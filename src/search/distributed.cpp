#include "search/distributed.hpp"

#include <algorithm>
#include <map>
#include <optional>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "search/load_model.hpp"
#include "search/wire.hpp"
#include "simmpi/bytes.hpp"

namespace lbe::search {

bool global_psm_better(const GlobalPsm& a, const GlobalPsm& b) {
  if (a.score != b.score) return a.score > b.score;
  if (a.shared_peaks != b.shared_peaks) return a.shared_peaks > b.shared_peaks;
  return a.peptide < b.peptide;
}

bool steal_protocol_active(const core::ScheduleParams& schedule, int ranks,
                           std::size_t num_queries) {
  // Pure function of data both sides of a process boundary share (the
  // master's plan vs a worker's decoded SearchSetup + comm size), so the
  // two halves of the protocol can never disagree about whether steal
  // messages flow.
  return schedule.schedule == core::Schedule::kStealing && ranks > 1 &&
         num_queries > 0;
}

namespace {

constexpr int kResultTag = 1;
constexpr int kStatsTag = 2;
constexpr int kStealRequestTag = 3;
constexpr int kStealGrantTag = 4;
constexpr int kStealTailTag = 5;

/// One rank's search machinery over one partial index. Under work stealing
/// a rank may hold several of these — its own plus any victim's whose
/// batches it claimed.
struct Executor {
  RankIndex index;
  std::unique_ptr<QueryEngine> engine;
  /// Predicted cost per query against this executor's index (empty under
  /// lbe_static). Predictions depend only on the index and the query set —
  /// never on execution — so they are computed once when the executor is
  /// built: for a rank's own index that is the build phase, keeping the
  /// per-query predict() walk (which re-preprocesses every spectrum) out
  /// of the gated query phase entirely. A thief pays one precompute per
  /// foreign index it steals from, amortized over every batch it claims.
  std::vector<double> predicted;
};

/// Per-rank execution state shared by the master's inline loop and the
/// worker body: executor cache plus full-size scratch rows for results,
/// per-query observed counters, and per-query predicted costs.
class TaskRunner {
 public:
  TaskRunner(const std::vector<chem::Spectrum>& queries,
             const chem::ModificationSet& mods, const SearchParams& search,
             bool cost_model, const RankIndexSource& source, ThreadPool* pool)
      : queries_(&queries),
        mods_(&mods),
        search_(search),
        cost_model_(cost_model),
        source_(&source),
        pool_(pool),
        results_(queries.size()),
        per_query_(queries.size()) {}

  Executor& executor_for(int index_rank) {
    const auto it = executors_.find(index_rank);
    if (it != executors_.end()) return it->second;
    Executor ex;
    ex.index = (*source_)(index_rank);
    ex.engine =
        std::make_unique<QueryEngine>(*ex.index.view, *mods_, search_);
    if (cost_model_) {
      // Built at most once per (executor, index) pair; deliberately skipped
      // under lbe_static — see WorkerSearchConfig::cost_model.
      const QueryCostModel model(*ex.index.view, search_.filter,
                                 search_.preprocess);
      ex.predicted.reserve(queries_->size());
      for (const chem::Spectrum& query : *queries_) {
        ex.predicted.push_back(model.predict(query));
      }
    }
    return executors_.emplace(index_rank, std::move(ex)).first->second;
  }

  /// Searches queries [lo, hi) against `index_rank`'s partial index into
  /// this runner's scratch rows; `work` accumulates the *executing* rank's
  /// total (stolen batches charge the thief, not the victim).
  void run_batch(int index_rank, std::size_t lo, std::size_t hi,
                 index::QueryWork& work) {
    Executor& ex = executor_for(index_rank);
    ex.engine->search_range(*queries_, lo, hi, results_, work, pool_,
                            &per_query_);
  }

  const std::vector<QueryResult>& results() const { return results_; }
  const std::vector<index::QueryWork>& per_query() const { return per_query_; }
  /// Predicted cost of query `i` against `index_rank`'s index; 0 under
  /// lbe_static. The executor must already exist (run_batch builds it).
  double predicted(int index_rank, std::size_t i) const {
    const std::vector<double>& p = executors_.at(index_rank).predicted;
    return p.empty() ? 0.0 : p[i];
  }

 private:
  const std::vector<chem::Spectrum>* queries_;
  const chem::ModificationSet* mods_;
  SearchParams search_;
  bool cost_model_;
  const RankIndexSource* source_;
  ThreadPool* pool_;
  std::map<int, Executor> executors_;
  std::vector<QueryResult> results_;
  std::vector<index::QueryWork> per_query_;
};

// One result batch on the wire: [index_rank][query_lo][count] then per query
// [query_id, predicted, work, psm_count, (local_id, shared, score)*].
// `index_rank` names the partial index the PSMs' local ids refer to — under
// stealing that is not necessarily the sender. `query_lo` identifies the
// batch cell (index_rank, query_lo / batch) so the master can deduplicate a
// victim/thief race before decoding the payload.
mpi::Bytes encode_task_batch(const TaskRunner& runner, int index_rank,
                             std::size_t lo, std::size_t hi) {
  mpi::Bytes bytes;
  mpi::ByteWriter writer(bytes);
  writer.pod(static_cast<std::int32_t>(index_rank));
  writer.pod(static_cast<std::uint64_t>(lo));
  writer.pod(static_cast<std::uint64_t>(hi - lo));
  for (std::size_t i = lo; i < hi; ++i) {
    const QueryResult& result = runner.results()[i];
    writer.pod(result.query_id);
    writer.pod(runner.predicted(index_rank, i));
    wire::write_query_work(writer, runner.per_query()[i]);
    writer.pod(static_cast<std::uint32_t>(result.top.size()));
    for (const Psm& psm : result.top) {
      writer.pod(psm.peptide);
      writer.pod(psm.shared_peaks);
      writer.pod(psm.score);
    }
  }
  return bytes;
}

/// Batch-cell identity read off the front of a result payload without
/// decoding it — what the stealing master's dedup grid keys on. A stolen
/// span may cover several consecutive batch cells (`count` queries from
/// `query_lo`); an owner's own results always cover exactly one.
struct TaskBatchHeader {
  std::int32_t index_rank = -1;
  std::uint64_t query_lo = 0;
  std::uint64_t count = 0;
};

TaskBatchHeader peek_task_batch(const mpi::Bytes& bytes) {
  mpi::ByteReader reader(bytes);
  TaskBatchHeader header;
  header.index_rank = reader.pod<std::int32_t>();
  header.query_lo = reader.pod<std::uint64_t>();
  header.count = reader.pod<std::uint64_t>();
  return header;
}

/// `from_query`: the first query id of the payload that this message won
/// the dedup race for. A stolen span's leading cells may have been executed
/// by their owner before the tail cut landed — those records are read past
/// (the wire format is sequential) but neither merged nor cost-recorded, so
/// every (index_rank, query) stays exactly-once.
void decode_task_batch_into(const mpi::Bytes& bytes, RankId executed_by,
                            int ranks, const index::MappingTable& mapping,
                            std::vector<GlobalQueryResult>& merged,
                            std::vector<QueryCostRecord>* costs,
                            std::uint32_t from_query = 0) {
  mpi::ByteReader reader(bytes);
  const auto index_rank = reader.pod<std::int32_t>();
  LBE_CHECK(index_rank >= 0 && index_rank < ranks,
            "result batch names an unknown index rank");
  reader.pod<std::uint64_t>();  // query_lo: cell identity, used by peek only
  const auto count = reader.pod<std::uint64_t>();
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto query_id = reader.pod<std::uint32_t>();
    const auto predicted = reader.pod<double>();
    const index::QueryWork work = wire::read_query_work(reader);
    const auto psm_count = reader.pod<std::uint32_t>();
    LBE_CHECK(query_id < merged.size(), "result for unknown query id");
    const bool claimed = query_id >= from_query;
    if (claimed && costs != nullptr) {
      costs->push_back(
          QueryCostRecord{query_id, index_rank, executed_by, predicted, work});
    }
    auto& slot = merged[query_id];
    if (claimed) slot.query_id = query_id;
    for (std::uint32_t k = 0; k < psm_count; ++k) {
      const auto local = reader.pod<LocalPeptideId>();
      const auto shared = reader.pod<std::uint32_t>();
      const auto hyper = reader.pod<float>();
      if (!claimed) continue;
      // The paper's O(1) mapping-table lookup: local (virtual) -> global.
      // source_rank is the *index* rank — placement, not executor — so the
      // merged stream is identical whether or not the batch was stolen.
      slot.top.push_back(GlobalPsm{mapping.to_global(index_rank, local),
                                   shared, hyper, index_rank});
    }
  }
}

}  // namespace

std::vector<double> DistributedReport::query_phase_seconds() const {
  std::vector<double> out;
  out.reserve(times.size());
  for (const auto& t : times) out.push_back(t.query_seconds());
  return out;
}

void run_search_worker_rank(mpi::Comm& comm,
                            const std::vector<chem::Spectrum>& queries,
                            const chem::ModificationSet& mods,
                            const WorkerSearchConfig& config,
                            const RankIndexSource& index_source) {
  LBE_CHECK(comm.rank() != 0, "rank 0 runs the master protocol, not this");
  LBE_CHECK(config.result_batch >= 1, "result_batch must be >= 1");
  const int rank = comm.rank();
  const std::size_t num_queries = queries.size();
  const std::uint32_t batch = config.result_batch;

  PhaseTimes times;
  index::QueryWork work;
  comm.barrier();
  times.start = comm.vclock();

  // [build] Partial index over this rank's LBE assignment — built, mapped
  // from the shared bundle, or adopted, depending on the backend.
  std::unique_ptr<ThreadPool> pool;
  if (config.threads_per_rank > 1) {
    pool = std::make_unique<ThreadPool>(config.threads_per_rank);
  }
  TaskRunner runner(queries, mods, config.search, config.cost_model,
                    index_source, pool.get());
  const Executor& own = runner.executor_for(rank);
  wire::RankStats stats;
  stats.index_entries = own.index.view->num_peptides();
  stats.index_bytes = own.index.view->memory_bytes();
  times.build_done = comm.vclock();
  comm.barrier();
  times.query_start = comm.vclock();

  // [query] Search query batches against partial indexes, shipping each
  // result batch to the master as soon as it is complete.
  if (!config.stealing) {
    // Fixed owner-computes schedule: the whole query set against this
    // rank's own partial index, in order. The master relies on receiving
    // exactly ceil(num_queries / batch) kResultTag messages from us. The
    // per-batch yield gives every schedule the same physical interleaving
    // on the serialized virtual engine — so measured static and stealing
    // timings differ by scheduling, not by cache locality of who held the
    // token longest (a no-op on concurrent backends).
    for (std::size_t lo = 0; lo < num_queries; lo += batch) {
      comm.yield();
      const std::size_t hi = std::min<std::size_t>(lo + batch, num_queries);
      runner.run_batch(rank, lo, hi, work);
      comm.send(0, kResultTag, encode_task_batch(runner, rank, lo, hi));
      ++stats.batches_executed;
    }
    times.query_done = comm.vclock();
  } else {
    // Work stealing, owner-local claiming: this rank executes its own queue
    // [head, tail) with no master round-trip — the master learns progress
    // from the result stream. When a thief is granted a batch off our
    // unstarted tail, the master mails a StealTailCut; we apply cuts
    // between batches (monotonically, min) and stop short of stolen work.
    // A cut can race past us — then both we and the thief run the batch and
    // the master deduplicates the cell — but it can never lose work.
    const std::size_t batches_per_rank =
        (num_queries + batch - 1) / batch;
    std::uint64_t head = 0;
    std::uint64_t tail = batches_per_rank;
    // A stealing rank's query phase ends when its last executed batch's
    // results exist — the release handshake after it (request, the master's
    // serialized done-grants) is shutdown, the static schedule's analogue
    // of the master merging after query_done. Folding the handshake into
    // query_done would bill every rank for the slowest release instead of
    // for query work.
    double last_batch_done = comm.vclock();
    while (head < tail) {
      // Without a blocking call in this loop, the serialized virtual engine
      // would run the whole queue in one physical slice and no cut could
      // ever arrive mid-queue; yield hands the token to ranks behind in
      // virtual time (a no-op on concurrent backends).
      comm.yield();
      while (comm.probe(0, kStealTailTag)) {
        const wire::StealTailCut cut =
            wire::decode_steal_tail_cut(comm.recv(0, kStealTailTag));
        tail = std::min(tail, cut.new_tail);
      }
      if (head >= tail) break;
      const std::uint64_t b = head++;
      const auto lo = static_cast<std::size_t>(b) * batch;
      const std::size_t hi = std::min<std::size_t>(lo + batch, num_queries);
      runner.run_batch(rank, lo, hi, work);
      comm.send(0, kResultTag, encode_task_batch(runner, rank, lo, hi));
      ++stats.batches_executed;
      last_batch_done = comm.vclock();
    }
    // Queue empty: turn thief. The first request tells the master this rank
    // is exhausted (no more cuts will be sent our way; any still in flight
    // are simply left unread). Each grant is one batch claimed from the
    // most-loaded rank's tail; `done` releases us to the stats send.
    for (;;) {
      comm.send(0, kStealRequestTag,
                wire::encode_steal_request(
                    wire::StealRequest{stats.batches_executed}));
      const wire::StealGrant grant =
          wire::decode_steal_grant(comm.recv(0, kStealGrantTag));
      if (grant.done) break;
      const auto lo = static_cast<std::size_t>(grant.query_lo);
      const auto hi = static_cast<std::size_t>(grant.query_hi);
      LBE_CHECK(hi <= num_queries, "steal grant out of query range");
      runner.run_batch(grant.index_rank, lo, hi, work);
      comm.send(0, kResultTag,
                encode_task_batch(runner, grant.index_rank, lo, hi));
      // A grant can span several batch cells (steal-half); the counters
      // stay in cell units so the ledger checks add up across schedules.
      const auto cells =
          static_cast<std::uint64_t>((hi - lo + batch - 1) / batch);
      stats.batches_executed += cells;
      stats.batches_stolen += cells;
      last_batch_done = comm.vclock();
    }
    times.query_done = last_batch_done;
  }
  times.finish = comm.vclock();

  // [stats] Shipped after `finish` is captured, so the phase times a rank
  // reports never include the reporting itself.
  stats.times = times;
  stats.work = work;
  comm.send(0, kStatsTag, wire::encode_rank_stats(stats));
}

DistributedReport run_distributed_search(
    mpi::Transport& transport, const core::LbePlan& plan,
    const std::vector<chem::Spectrum>& queries,
    const DistributedParams& params) {
  const int p = plan.ranks();
  LBE_CHECK(transport.ranks() == p,
            "cluster size must match the partition plan");
  LBE_CHECK(params.result_batch >= 1, "result_batch must be >= 1");
  LBE_CHECK(params.preloaded == nullptr ||
                params.preloaded->size() == static_cast<std::size_t>(p),
            "preloaded index set must hold one index per rank");
  params.schedule.validate();

  DistributedReport report;
  report.times.assign(static_cast<std::size_t>(p), PhaseTimes{});
  report.work.assign(static_cast<std::size_t>(p), index::QueryWork{});
  report.index_bytes.assign(static_cast<std::size_t>(p), 0);
  report.index_entries.assign(static_cast<std::size_t>(p), 0);
  report.batches_executed.assign(static_cast<std::size_t>(p), 0);
  report.batches_stolen.assign(static_cast<std::size_t>(p), 0);
  report.mapping_bytes = plan.mapping().memory_bytes();

  const std::size_t num_queries = queries.size();
  const std::uint32_t batch = params.result_batch;
  const std::size_t batches_per_rank =
      num_queries == 0 ? 0 : (num_queries + batch - 1) / batch;
  const bool stealing =
      steal_protocol_active(params.schedule, p, num_queries);
  const bool cost_model =
      params.schedule.schedule != core::Schedule::kLbeStatic;

  // Builds (or adopts) rank `rank`'s partial index; shared by the master
  // below and the in-process worker ranks. Under stealing a thief calls it
  // for its victim's rank too — the cost of acquiring the foreign index is
  // charged to the thief's query phase, like a real remote fetch.
  const RankIndexSource index_source = [&](int rank) {
    RankIndex out;
    if (params.preloaded == nullptr) {
      index::PeptideStore store = plan.build_rank_store(rank);
      out.owned = std::make_unique<index::ChunkedIndex>(
          std::move(store), plan.mods(), params.index, params.chunking);
      out.view = out.owned.get();
    } else {
      out.view = (*params.preloaded)[static_cast<std::size_t>(rank)].get();
    }
    return out;
  };

  transport.run([&](mpi::Comm& comm) {
    const int rank = comm.rank();
    if (rank != 0) {
      // In-process worker ranks (the process backend's workers run the
      // same body via the registered rank program instead).
      WorkerSearchConfig config{params.search, batch, params.threads_per_rank};
      config.stealing = stealing;
      config.cost_model = cost_model;
      run_search_worker_rank(comm, queries, plan.mods(), config,
                             index_source);
      return;
    }

    auto& times = report.times[0];

    // [prep] Serial master work (grouping/partitioning happened outside;
    // its measured cost is charged here so total-time figures include it).
    if (params.prep_seconds > 0.0) {
      comm.charge(params.prep_seconds);
    }
    comm.barrier();
    times.start = comm.vclock();

    // [build] The master's own partial index (and engine/cost model).
    std::unique_ptr<ThreadPool> pool;
    if (params.threads_per_rank > 1) {
      pool = std::make_unique<ThreadPool>(params.threads_per_rank);
    }
    TaskRunner runner(queries, plan.mods(), params.search, cost_model,
                      index_source, pool.get());
    const Executor& own = runner.executor_for(0);
    report.index_entries[0] = own.index.view->num_peptides();
    report.index_bytes[0] = own.index.view->memory_bytes();
    times.build_done = comm.vclock();
    comm.barrier();
    times.query_start = comm.vclock();

    std::vector<GlobalQueryResult> merged(num_queries);
    std::vector<QueryCostRecord>* costs =
        cost_model ? &report.query_costs : nullptr;
    auto& work = report.work[0];

    // Folds the master's own scratch rows [lo, hi) — searched against
    // `index_rank`'s partial index — straight into the merge, bypassing the
    // wire (same mapping, same record shape as decode_task_batch_into).
    auto merge_own_rows = [&](int index_rank, std::size_t lo,
                              std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        const QueryResult& result = runner.results()[i];
        if (costs != nullptr) {
          costs->push_back(QueryCostRecord{result.query_id, index_rank, 0,
                                           runner.predicted(index_rank, i),
                                           runner.per_query()[i]});
        }
        auto& slot = merged[result.query_id];
        slot.query_id = result.query_id;
        for (const Psm& psm : result.top) {
          slot.top.push_back(
              GlobalPsm{plan.mapping().to_global(index_rank, psm.peptide),
                        psm.shared_peaks, psm.score, index_rank});
        }
      }
    };

    std::vector<std::optional<wire::RankStats>> stashed_stats(
        static_cast<std::size_t>(p));

    if (!stealing) {
      // [query] Fixed owner-computes schedule: the master searches the
      // whole query set against its own partial index... (The yield
      // mirrors the workers' — every rank interleaves per batch on the
      // serialized engine, so schedules compare on scheduling alone.)
      for (std::size_t lo = 0; lo < num_queries; lo += batch) {
        comm.yield();
        const std::size_t hi = std::min<std::size_t>(lo + batch, num_queries);
        runner.run_batch(0, lo, hi, work);
        ++report.batches_executed[0];
      }
      times.query_done = comm.vclock();

      // [merge] ...then folds its own results plus every worker batch
      // through the mapping table.
      merge_own_rows(0, 0, num_queries);
      for (int src = 1; src < p; ++src) {
        for (std::size_t b = 0; b < batches_per_rank; ++b) {
          decode_task_batch_into(comm.recv(src, kResultTag), src, p,
                                 plan.mapping(), merged, costs);
        }
      }
    } else {
      // [query] Work stealing with owner-local claiming. Ranks execute
      // their own queues without any master round-trip; the master's
      // ledger tracks, per rank v, the unstolen tail `tail[v]` (exact —
      // only the master cuts it) and how many of v's own batches have been
      // *received* (`results_own[v]`, a conservative progress floor, since
      // results in flight undercount). An idle rank sends one StealRequest
      // and is then fed batches off the most-loaded rank's tail, one grant
      // per result, until no backlog clears the threshold. Each grant to a
      // worker victim is announced to that victim with a StealTailCut; a
      // cut that loses the race costs one duplicated batch, which the
      // per-cell dedup grid below absorbs before decode — so query_costs
      // and merged PSMs stay exactly-once per (index_rank, batch) cell.
      std::vector<std::uint64_t> tail(static_cast<std::size_t>(p),
                                      batches_per_rank);
      std::vector<std::uint64_t> results_own(static_cast<std::size_t>(p), 0);
      std::vector<char> exhausted(static_cast<std::size_t>(p), 0);
      std::uint64_t my_head = 0;
      std::vector<std::vector<char>> cell_merged(
          static_cast<std::size_t>(p),
          std::vector<char>(batches_per_rank, 0));
      const std::uint64_t total_cells =
          static_cast<std::uint64_t>(p) * batches_per_rank;
      std::uint64_t merged_cells = 0;
      int workers_released = 0;

      // Estimated unfinished own-queue depth of rank v. Exact for the
      // master (my_head), a slight overestimate for workers (in-flight
      // results) — which only errs toward stealing a batch the owner just
      // finished, i.e. a deduplicated no-op, never toward losing work.
      auto backlog = [&](int v) -> std::uint64_t {
        const auto vv = static_cast<std::size_t>(v);
        if (exhausted[vv]) return 0;
        const std::uint64_t done = v == 0 ? my_head : results_own[vv];
        return tail[vv] > done ? tail[vv] - done : 0;
      };

      auto claim_for = [&](int requester) {
        wire::StealGrant grant;
        // Steal from the most-loaded rank's unstarted tail — but only when
        // that backlog clears the threshold relative to the mean remaining
        // load, with a floor of 4: a victim's last pending batch is likely
        // already being computed by its owner, and a worker's backlog is
        // read through in-flight results, which overstate it by a message
        // or two near the end. The floor keeps a balanced run — where a
        // rank can transiently look a few batches behind from timing noise
        // alone — from churning batches that their owner would finish
        // sooner than a grant round trip anyway.
        int victim = -1;
        std::uint64_t most = 0;
        std::uint64_t total = 0;
        for (int v = 0; v < p; ++v) {
          const std::uint64_t rem = backlog(v);
          total += rem;
          if (rem > most) {
            most = rem;
            victim = v;
          }
        }
        const double mean =
            static_cast<double>(total) / static_cast<double>(p);
        if (victim < 0 || victim == requester ||
            static_cast<double>(most) <
                std::max(4.0, params.schedule.steal_threshold * mean)) {
          grant.done = true;
          return grant;
        }
        // Steal-half, capped: one grant moves up to half the victim's
        // unstarted tail so a round trip to the master amortizes over
        // several batches — the serving master, not the thief's compute,
        // is the scarce resource when many ranks go idle together.
        const auto v = static_cast<std::size_t>(victim);
        const std::uint64_t take =
            std::max<std::uint64_t>(1, std::min<std::uint64_t>(most / 2, 4));
        tail[v] -= take;
        const std::uint64_t b_lo = tail[v];
        if (victim != 0) {
          comm.send(victim, kStealTailTag,
                    wire::encode_steal_tail_cut(wire::StealTailCut{b_lo}));
        }
        grant.index_rank = victim;
        grant.query_lo = b_lo * batch;
        grant.query_hi =
            std::min<std::uint64_t>((b_lo + take) * batch, num_queries);
        return grant;
      };

      auto serve_request = [&](int src, const mpi::Bytes& payload) {
        wire::decode_steal_request(payload);  // shape check only
        exhausted[static_cast<std::size_t>(src)] = 1;
        const wire::StealGrant grant = claim_for(src);
        if (grant.done) ++workers_released;
        comm.send(src, kStealGrantTag, wire::encode_steal_grant(grant));
      };

      // Worker results are only *peeked* during the query loop — enough
      // for the ledger and the dedup grid. The expensive wire decode is
      // deferred to the merge epilogue after query_done, exactly where the
      // static schedule pays it, so the gated query phase reflects
      // scheduling rather than the master's serial decode bill.
      struct PendingResult {
        int src;
        std::uint32_t from_query;  ///< dedup watermark for the decode
        mpi::Bytes payload;
      };
      std::vector<PendingResult> pending;
      pending.reserve(static_cast<std::size_t>(p - 1) * batches_per_rank);

      auto on_result = [&](int src, mpi::Bytes payload) {
        const TaskBatchHeader header = peek_task_batch(payload);
        LBE_CHECK(header.index_rank >= 0 && header.index_rank < p,
                  "result batch names an unknown index rank");
        const std::uint64_t b_lo = header.query_lo / batch;
        const std::uint64_t b_hi =
            header.count == 0
                ? b_lo + 1
                : (header.query_lo + header.count - 1) / batch + 1;
        LBE_CHECK(b_lo < b_hi && b_hi <= batches_per_rank,
                  "result batch out of grid range");
        const auto v = static_cast<std::size_t>(header.index_rank);
        // Owner results arrive in batch order (per-pair FIFO) and always
        // cover one cell, so this counts each own cell at most once and is
        // the ledger's progress floor for rank v.
        if (header.index_rank == src) ++results_own[v];
        // Claim the span's unmerged cells. An owner racing a tail cut wins
        // a *prefix* of the span (it executes its queue in order), so the
        // unclaimed part is a contiguous tail and one watermark suffices.
        std::uint64_t first_unmerged = b_hi;
        for (std::uint64_t b = b_lo; b < b_hi; ++b) {
          if (!cell_merged[v][b]) {
            first_unmerged = b;
            break;
          }
        }
        if (first_unmerged == b_hi) return;  // benign duplicate, fully lost
        for (std::uint64_t b = first_unmerged; b < b_hi; ++b) {
          LBE_CHECK(!cell_merged[v][b],
                    "non-contiguous dedup claim in a stolen span");
          cell_merged[v][b] = 1;
          ++merged_cells;
        }
        pending.push_back(PendingResult{
            src, static_cast<std::uint32_t>(first_unmerged * batch),
            std::move(payload)});
      };

      // Drain already-arrived results without blocking — the ledger's
      // progress floor must be as fresh as possible *before* any grant
      // decision, or a balanced run reads laggy results_own as backlog and
      // churns duplicated batches.
      auto drain_results = [&]() {
        while (comm.probe(mpi::kAnySource, kResultTag)) {
          mpi::RecvInfo info;
          mpi::Bytes payload = comm.recv(mpi::kAnySource, kResultTag, &info);
          on_result(info.src, std::move(payload));
        }
      };

      // Serve any request that has already arrived. Results are drained
      // only when a grant decision needs them (drain_results inside):
      // receiving is real metered work, and paying it eagerly between the
      // master's own batches would bill the query phase for what the
      // static schedule pays in its merge epilogue.
      auto pump = [&]() {
        while (comm.probe(mpi::kAnySource, kStealRequestTag)) {
          mpi::RecvInfo info;
          const mpi::Bytes payload =
              comm.recv(mpi::kAnySource, kStealRequestTag, &info);
          drain_results();
          serve_request(info.src, payload);
        }
      };

      // Phase 1: the master's own queue, same owner-local rule as the
      // workers'. Requests and results queue in the mailbox until phase 2:
      // serving mid-queue would interleave drains and grant decisions —
      // real metered work — between the master's own batches, billing its
      // query phase (and, through release waits, every rank's) for what
      // the static schedule pays in its merge epilogue. Thieves lose at
      // most one master-batch of grant latency, and only when the master
      // is among the slowest ranks. The yield lets ranks that are behind
      // in virtual time run between batches on the serialized engine (a
      // no-op on concurrent backends). Like the workers, the master's
      // query phase ends at its last executed batch; the grant serving
      // after it is shutdown.
      double last_batch_done = comm.vclock();
      while (my_head < tail[0]) {
        comm.yield();
        const std::uint64_t b = my_head++;
        const auto lo = static_cast<std::size_t>(b) * batch;
        const std::size_t hi = std::min<std::size_t>(lo + batch, num_queries);
        runner.run_batch(0, lo, hi, work);
        merge_own_rows(0, lo, hi);
        cell_merged[0][b] = 1;
        ++merged_cells;
        ++report.batches_executed[0];
        last_batch_done = comm.vclock();
      }
      exhausted[0] = 1;

      // Phase 2: the master is a pure grant server. It does NOT turn
      // thief: a stolen batch would pin it for a full compute while every
      // idle thief's request queues behind it — grant latency is worth
      // more than one extra fast rank of capacity. Straggler results
      // still in flight are merge work, exactly like the static master's
      // post-query_done recv loop. A worker's stats cannot overtake its
      // own sends (per-pair FIFO) but may arrive before its release is
      // processed — stash them.
      pump();
      while (workers_released < p - 1) {
        mpi::RecvInfo info;
        mpi::Bytes payload = comm.recv(mpi::kAnySource, mpi::kAnyTag, &info);
        if (info.tag == kStealRequestTag) {
          // The blocking recv jumped the clock to the request's send time;
          // results that became visible with it must feed the ledger
          // before the grant decision.
          drain_results();
          serve_request(info.src, payload);
        } else if (info.tag == kResultTag) {
          on_result(info.src, std::move(payload));
        } else if (info.tag == kStatsTag) {
          stashed_stats[static_cast<std::size_t>(info.src)] =
              wire::decode_rank_stats(payload);
        } else {
          throw CommError("unexpected tag during steal drain");
        }
      }
      times.query_done = last_batch_done;

      // [merge] Straggler results (every worker is already released, so
      // only kResultTag can still be pending besides stats), then the
      // deferred wire decodes — the same serial epilogue the static
      // schedule runs between query_done and finish.
      while (merged_cells < total_cells) {
        mpi::RecvInfo info;
        mpi::Bytes payload = comm.recv(mpi::kAnySource, kResultTag, &info);
        on_result(info.src, std::move(payload));
      }
      for (const PendingResult& result : pending) {
        decode_task_batch_into(result.payload, result.src, p, plan.mapping(),
                               merged, costs, result.from_query);
      }
    }

    // Deterministic merge: global_psm_better is a strict total order over
    // unique global ids, so the sorted/truncated lists are independent of
    // which rank executed which batch and of arrival order.
    const std::size_t top_k = params.search.top_k;
    for (auto& result : merged) {
      std::sort(result.top.begin(), result.top.end(), global_psm_better);
      if (result.top.size() > top_k) result.top.resize(top_k);
    }
    report.results = std::move(merged);
    times.finish = comm.vclock();

    // [stats] Collect every worker's phase/work accounting. Received after
    // `finish` so the master's own phase times stay merge-bounded; workers
    // sent these after capturing their own `finish` for the same reason.
    for (int src = 1; src < p; ++src) {
      const auto slot = static_cast<std::size_t>(src);
      const wire::RankStats stats =
          stashed_stats[slot].has_value()
              ? *stashed_stats[slot]
              : wire::decode_rank_stats(comm.recv(src, kStatsTag));
      report.times[slot] = stats.times;
      report.work[slot] = stats.work;
      report.index_bytes[slot] = stats.index_bytes;
      report.index_entries[slot] = stats.index_entries;
      report.batches_executed[slot] = stats.batches_executed;
      report.batches_stolen[slot] = stats.batches_stolen;
    }
  });

  report.makespan = 0.0;
  for (const auto& t : report.times) {
    report.makespan = std::max(report.makespan, t.finish);
  }
  // Executor- and arrival-order-independent record stream for metrics.
  std::sort(report.query_costs.begin(), report.query_costs.end(),
            [](const QueryCostRecord& a, const QueryCostRecord& b) {
              if (a.index_rank != b.index_rank) {
                return a.index_rank < b.index_rank;
              }
              return a.query_id < b.query_id;
            });
  return report;
}

SharedBaselineReport run_shared_baseline(
    const core::LbePlan& plan, const std::vector<chem::Spectrum>& queries,
    const DistributedParams& params) {
  SharedBaselineReport report;

  Stopwatch build_timer;
  const index::ChunkedIndex global(plan.build_global_store(), plan.mods(),
                                   params.index, params.chunking);
  report.build_seconds = build_timer.seconds();
  report.index_bytes = global.memory_bytes();

  const QueryEngine engine(global, plan.mods(), params.search);
  Stopwatch query_timer;
  report.results.resize(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const QueryResult local =
        engine.search(queries[q], static_cast<std::uint32_t>(q), report.work);
    auto& slot = report.results[q];
    slot.query_id = local.query_id;
    for (const Psm& psm : local.top) {
      // Global store: local ids are already global ids.
      slot.top.push_back(
          GlobalPsm{psm.peptide, psm.shared_peaks, psm.score, 0});
    }
  }
  report.query_seconds = query_timer.seconds();
  return report;
}

}  // namespace lbe::search
