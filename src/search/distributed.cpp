#include "search/distributed.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "search/wire.hpp"
#include "simmpi/bytes.hpp"

namespace lbe::search {

bool global_psm_better(const GlobalPsm& a, const GlobalPsm& b) {
  if (a.score != b.score) return a.score > b.score;
  if (a.shared_peaks != b.shared_peaks) return a.shared_peaks > b.shared_peaks;
  return a.peptide < b.peptide;
}

namespace {

constexpr int kResultTag = 1;
constexpr int kStatsTag = 2;

// One result batch on the wire: [count] then per query
// [query_id, psm_count, (local_id, shared, score)*].
mpi::Bytes encode_batch(const std::vector<QueryResult>& results,
                        std::size_t lo, std::size_t hi) {
  mpi::Bytes bytes;
  mpi::ByteWriter writer(bytes);
  writer.pod(static_cast<std::uint64_t>(hi - lo));
  for (std::size_t i = lo; i < hi; ++i) {
    writer.pod(results[i].query_id);
    writer.pod(static_cast<std::uint32_t>(results[i].top.size()));
    for (const Psm& psm : results[i].top) {
      writer.pod(psm.peptide);
      writer.pod(psm.shared_peaks);
      writer.pod(psm.score);
    }
  }
  return bytes;
}

void decode_batch_into(const mpi::Bytes& bytes, RankId source,
                       const index::MappingTable& mapping,
                       std::vector<GlobalQueryResult>& merged) {
  mpi::ByteReader reader(bytes);
  const auto count = reader.pod<std::uint64_t>();
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto query_id = reader.pod<std::uint32_t>();
    const auto psm_count = reader.pod<std::uint32_t>();
    LBE_CHECK(query_id < merged.size(), "result for unknown query id");
    auto& slot = merged[query_id];
    slot.query_id = query_id;
    for (std::uint32_t k = 0; k < psm_count; ++k) {
      const auto local = reader.pod<LocalPeptideId>();
      const auto shared = reader.pod<std::uint32_t>();
      const auto hyper = reader.pod<float>();
      // The paper's O(1) mapping-table lookup: local (virtual) -> global.
      slot.top.push_back(GlobalPsm{mapping.to_global(source, local), shared,
                                   hyper, source});
    }
  }
}

}  // namespace

std::vector<double> DistributedReport::query_phase_seconds() const {
  std::vector<double> out;
  out.reserve(times.size());
  for (const auto& t : times) out.push_back(t.query_seconds());
  return out;
}

void run_search_worker_rank(mpi::Comm& comm,
                            const std::vector<chem::Spectrum>& queries,
                            const chem::ModificationSet& mods,
                            const WorkerSearchConfig& config,
                            const RankIndexSource& index_source) {
  LBE_CHECK(comm.rank() != 0, "rank 0 runs the master protocol, not this");
  LBE_CHECK(config.result_batch >= 1, "result_batch must be >= 1");
  const std::size_t num_queries = queries.size();
  const std::uint32_t batch = config.result_batch;

  PhaseTimes times;
  index::QueryWork work;
  comm.barrier();
  times.start = comm.vclock();

  // [build] Partial index over this rank's LBE assignment — built, mapped
  // from the shared bundle, or adopted, depending on the backend.
  const RankIndex rank_index = index_source(comm.rank());
  const index::ChunkedIndex& partial = *rank_index.view;
  wire::RankStats stats;
  stats.index_entries = partial.num_peptides();
  stats.index_bytes = partial.memory_bytes();
  times.build_done = comm.vclock();
  comm.barrier();
  times.query_start = comm.vclock();

  // [query] Search the whole query set against the partial index, shipping
  // each result batch to the master as soon as it is complete.
  const QueryEngine engine(partial, mods, config.search);
  std::vector<QueryResult> local(num_queries);
  if (config.threads_per_rank > 1) {
    ThreadPool pool(config.threads_per_rank);
    for (std::size_t lo = 0; lo < num_queries; lo += batch) {
      const std::size_t hi = std::min<std::size_t>(lo + batch, num_queries);
      engine.search_range(queries, lo, hi, local, work, &pool);
      comm.send(0, kResultTag, encode_batch(local, lo, hi));
    }
  } else {
    for (std::size_t q = 0; q < num_queries; ++q) {
      local[q] = engine.search(queries[q], static_cast<std::uint32_t>(q),
                               work);
      if ((q + 1) % batch == 0 || q + 1 == num_queries) {
        const std::size_t lo = (q / batch) * batch;
        comm.send(0, kResultTag, encode_batch(local, lo, q + 1));
      }
    }
  }
  times.query_done = comm.vclock();
  times.finish = comm.vclock();

  // [stats] Shipped after `finish` is captured, so the phase times a rank
  // reports never include the reporting itself.
  stats.times = times;
  stats.work = work;
  comm.send(0, kStatsTag, wire::encode_rank_stats(stats));
}

DistributedReport run_distributed_search(
    mpi::Transport& transport, const core::LbePlan& plan,
    const std::vector<chem::Spectrum>& queries,
    const DistributedParams& params) {
  const int p = plan.ranks();
  LBE_CHECK(transport.ranks() == p,
            "cluster size must match the partition plan");
  LBE_CHECK(params.result_batch >= 1, "result_batch must be >= 1");
  LBE_CHECK(params.preloaded == nullptr ||
                params.preloaded->size() == static_cast<std::size_t>(p),
            "preloaded index set must hold one index per rank");

  DistributedReport report;
  report.times.assign(static_cast<std::size_t>(p), PhaseTimes{});
  report.work.assign(static_cast<std::size_t>(p), index::QueryWork{});
  report.index_bytes.assign(static_cast<std::size_t>(p), 0);
  report.index_entries.assign(static_cast<std::size_t>(p), 0);
  report.mapping_bytes = plan.mapping().memory_bytes();

  const std::size_t num_queries = queries.size();
  const std::uint32_t batch = params.result_batch;
  const std::size_t batches_per_rank =
      num_queries == 0 ? 0 : (num_queries + batch - 1) / batch;

  // Builds (or adopts) rank `rank`'s partial index; shared by the master
  // below and the in-process worker ranks.
  const RankIndexSource index_source = [&](int rank) {
    RankIndex out;
    if (params.preloaded == nullptr) {
      index::PeptideStore store = plan.build_rank_store(rank);
      out.owned = std::make_unique<index::ChunkedIndex>(
          std::move(store), plan.mods(), params.index, params.chunking);
      out.view = out.owned.get();
    } else {
      out.view = (*params.preloaded)[static_cast<std::size_t>(rank)].get();
    }
    return out;
  };

  transport.run([&](mpi::Comm& comm) {
    const int rank = comm.rank();
    if (rank != 0) {
      // In-process worker ranks (the process backend's workers run the
      // same body via the registered rank program instead).
      run_search_worker_rank(
          comm, queries, plan.mods(),
          WorkerSearchConfig{params.search, batch, params.threads_per_rank},
          index_source);
      return;
    }

    auto& times = report.times[0];

    // [prep] Serial master work (grouping/partitioning happened outside;
    // its measured cost is charged here so total-time figures include it).
    if (params.prep_seconds > 0.0) {
      comm.charge(params.prep_seconds);
    }
    comm.barrier();
    times.start = comm.vclock();

    // [build] The master's own partial index.
    const RankIndex rank_index = index_source(0);
    const index::ChunkedIndex& partial = *rank_index.view;
    report.index_entries[0] = partial.num_peptides();
    report.index_bytes[0] = partial.memory_bytes();
    times.build_done = comm.vclock();
    comm.barrier();
    times.query_start = comm.vclock();

    // [query] Every rank searches the whole query set against its partial
    // index ("all compute units read the query spectra", §III-E).
    const QueryEngine engine(partial, plan.mods(), params.search);
    std::vector<QueryResult> local(num_queries);
    auto& work = report.work[0];
    if (params.threads_per_rank > 1) {
      // Hybrid batched runtime: each result batch fans its preprocessing +
      // filtration out over an in-rank pool; the master keeps its results
      // local, so batching only changes worker-side comm granularity.
      ThreadPool pool(params.threads_per_rank);
      for (std::size_t lo = 0; lo < num_queries; lo += batch) {
        const std::size_t hi = std::min<std::size_t>(lo + batch, num_queries);
        engine.search_range(queries, lo, hi, local, work, &pool);
      }
    } else {
      for (std::size_t q = 0; q < num_queries; ++q) {
        local[q] = engine.search(queries[q], static_cast<std::uint32_t>(q),
                                 work);
      }
    }
    times.query_done = comm.vclock();

    // [merge] Fold the master's own results plus every worker batch
    // through the mapping table.
    std::vector<GlobalQueryResult> merged(num_queries);
    decode_batch_into(encode_batch(local, 0, num_queries), 0, plan.mapping(),
                      merged);
    for (int src = 1; src < p; ++src) {
      for (std::size_t b = 0; b < batches_per_rank; ++b) {
        decode_batch_into(comm.recv(src, kResultTag), src, plan.mapping(),
                          merged);
      }
    }
    const std::size_t top_k = params.search.top_k;
    for (auto& result : merged) {
      std::sort(result.top.begin(), result.top.end(), global_psm_better);
      if (result.top.size() > top_k) result.top.resize(top_k);
    }
    report.results = std::move(merged);
    times.finish = comm.vclock();

    // [stats] Collect every worker's phase/work accounting. Received after
    // `finish` so the master's own phase times stay merge-bounded; workers
    // sent these after capturing their own `finish` for the same reason.
    for (int src = 1; src < p; ++src) {
      const mpi::Bytes payload = comm.recv(src, kStatsTag);
      const wire::RankStats stats = wire::decode_rank_stats(payload);
      const auto slot = static_cast<std::size_t>(src);
      report.times[slot] = stats.times;
      report.work[slot] = stats.work;
      report.index_bytes[slot] = stats.index_bytes;
      report.index_entries[slot] = stats.index_entries;
    }
  });

  report.makespan = 0.0;
  for (const auto& t : report.times) {
    report.makespan = std::max(report.makespan, t.finish);
  }
  return report;
}

SharedBaselineReport run_shared_baseline(
    const core::LbePlan& plan, const std::vector<chem::Spectrum>& queries,
    const DistributedParams& params) {
  SharedBaselineReport report;

  Stopwatch build_timer;
  const index::ChunkedIndex global(plan.build_global_store(), plan.mods(),
                                   params.index, params.chunking);
  report.build_seconds = build_timer.seconds();
  report.index_bytes = global.memory_bytes();

  const QueryEngine engine(global, plan.mods(), params.search);
  Stopwatch query_timer;
  report.results.resize(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const QueryResult local =
        engine.search(queries[q], static_cast<std::uint32_t>(q), report.work);
    auto& slot = report.results[q];
    slot.query_id = local.query_id;
    for (const Psm& psm : local.top) {
      // Global store: local ids are already global ids.
      slot.top.push_back(
          GlobalPsm{psm.peptide, psm.shared_peaks, psm.score, 0});
    }
  }
  report.query_seconds = query_timer.seconds();
  return report;
}

}  // namespace lbe::search
