#include "search/distributed.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "simmpi/bytes.hpp"

namespace lbe::search {

bool global_psm_better(const GlobalPsm& a, const GlobalPsm& b) {
  if (a.score != b.score) return a.score > b.score;
  if (a.shared_peaks != b.shared_peaks) return a.shared_peaks > b.shared_peaks;
  return a.peptide < b.peptide;
}

namespace {

constexpr int kResultTag = 1;

// One result batch on the wire: [count] then per query
// [query_id, psm_count, (local_id, shared, score)*].
mpi::Bytes encode_batch(const std::vector<QueryResult>& results,
                        std::size_t lo, std::size_t hi) {
  mpi::Bytes bytes;
  mpi::ByteWriter writer(bytes);
  writer.pod(static_cast<std::uint64_t>(hi - lo));
  for (std::size_t i = lo; i < hi; ++i) {
    writer.pod(results[i].query_id);
    writer.pod(static_cast<std::uint32_t>(results[i].top.size()));
    for (const Psm& psm : results[i].top) {
      writer.pod(psm.peptide);
      writer.pod(psm.shared_peaks);
      writer.pod(psm.score);
    }
  }
  return bytes;
}

void decode_batch_into(const mpi::Bytes& bytes, RankId source,
                       const index::MappingTable& mapping,
                       std::vector<GlobalQueryResult>& merged) {
  mpi::ByteReader reader(bytes);
  const auto count = reader.pod<std::uint64_t>();
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto query_id = reader.pod<std::uint32_t>();
    const auto psm_count = reader.pod<std::uint32_t>();
    LBE_CHECK(query_id < merged.size(), "result for unknown query id");
    auto& slot = merged[query_id];
    slot.query_id = query_id;
    for (std::uint32_t k = 0; k < psm_count; ++k) {
      const auto local = reader.pod<LocalPeptideId>();
      const auto shared = reader.pod<std::uint32_t>();
      const auto hyper = reader.pod<float>();
      // The paper's O(1) mapping-table lookup: local (virtual) -> global.
      slot.top.push_back(GlobalPsm{mapping.to_global(source, local), shared,
                                   hyper, source});
    }
  }
}

}  // namespace

std::vector<double> DistributedReport::query_phase_seconds() const {
  std::vector<double> out;
  out.reserve(times.size());
  for (const auto& t : times) out.push_back(t.query_seconds());
  return out;
}

DistributedReport run_distributed_search(
    mpi::Cluster& cluster, const core::LbePlan& plan,
    const std::vector<chem::Spectrum>& queries,
    const DistributedParams& params) {
  const int p = plan.ranks();
  LBE_CHECK(cluster.options().ranks == p,
            "cluster size must match the partition plan");
  LBE_CHECK(params.result_batch >= 1, "result_batch must be >= 1");
  LBE_CHECK(params.preloaded == nullptr ||
                params.preloaded->size() == static_cast<std::size_t>(p),
            "preloaded index set must hold one index per rank");

  DistributedReport report;
  report.times.assign(static_cast<std::size_t>(p), PhaseTimes{});
  report.work.assign(static_cast<std::size_t>(p), index::QueryWork{});
  report.index_bytes.assign(static_cast<std::size_t>(p), 0);
  report.index_entries.assign(static_cast<std::size_t>(p), 0);
  report.mapping_bytes = plan.mapping().memory_bytes();

  const std::size_t num_queries = queries.size();
  const std::uint32_t batch = params.result_batch;
  const std::size_t batches_per_rank =
      num_queries == 0 ? 0 : (num_queries + batch - 1) / batch;

  cluster.run([&](mpi::Comm& comm) {
    const int rank = comm.rank();
    const auto slot = static_cast<std::size_t>(rank);
    auto& times = report.times[slot];

    // [prep] Serial master work (grouping/partitioning happened outside;
    // its measured cost is charged here so total-time figures include it).
    if (rank == 0 && params.prep_seconds > 0.0) {
      comm.charge(params.prep_seconds);
    }
    comm.barrier();
    times.start = comm.vclock();

    // [build] Partial index over this rank's LBE assignment — or, on a
    // warm start, adopt the preloaded index and skip construction
    // entirely (the paper's disk-resident chunks swapping back in).
    std::unique_ptr<index::ChunkedIndex> built;
    if (params.preloaded == nullptr) {
      index::PeptideStore store = plan.build_rank_store(rank);
      built = std::make_unique<index::ChunkedIndex>(
          std::move(store), plan.mods(), params.index, params.chunking);
    }
    const index::ChunkedIndex& partial =
        built ? *built : *(*params.preloaded)[slot];
    report.index_entries[slot] = partial.num_peptides();
    report.index_bytes[slot] = partial.memory_bytes();
    times.build_done = comm.vclock();
    comm.barrier();
    times.query_start = comm.vclock();

    // [query] Every rank searches the whole query set against its partial
    // index ("all compute units read the query spectra", §III-E).
    const QueryEngine engine(partial, plan.mods(), params.search);
    std::vector<QueryResult> local(num_queries);
    auto& work = report.work[slot];
    if (params.threads_per_rank > 1) {
      // Hybrid batched runtime: each result batch fans its preprocessing +
      // filtration out over an in-rank pool, then ships immediately, so
      // batch b+1's compute overlaps batch b's (buffered, non-blocking)
      // delivery. ThreadPool(n) has size n — the calling thread works one
      // block alongside n-1 spawned workers.
      ThreadPool pool(params.threads_per_rank);
      for (std::size_t lo = 0; lo < num_queries; lo += batch) {
        const std::size_t hi = std::min<std::size_t>(lo + batch, num_queries);
        engine.search_range(queries, lo, hi, local, work, &pool);
        if (rank != 0) {
          comm.send(0, kResultTag, encode_batch(local, lo, hi));
        }
      }
    } else {
      for (std::size_t q = 0; q < num_queries; ++q) {
        local[q] = engine.search(queries[q], static_cast<std::uint32_t>(q),
                                 work);
        // Ship a full batch as soon as it is complete (workers only).
        if (rank != 0 && ((q + 1) % batch == 0 || q + 1 == num_queries)) {
          const std::size_t lo = (q / batch) * batch;
          comm.send(0, kResultTag, encode_batch(local, lo, q + 1));
        }
      }
    }
    times.query_done = comm.vclock();

    // [merge] Master folds its own results plus every worker batch through
    // the mapping table.
    if (rank == 0) {
      std::vector<GlobalQueryResult> merged(num_queries);
      decode_batch_into(encode_batch(local, 0, num_queries), 0,
                        plan.mapping(), merged);
      for (int src = 1; src < p; ++src) {
        for (std::size_t b = 0; b < batches_per_rank; ++b) {
          decode_batch_into(comm.recv(src, kResultTag), src, plan.mapping(),
                            merged);
        }
      }
      const std::size_t top_k = params.search.top_k;
      for (auto& result : merged) {
        std::sort(result.top.begin(), result.top.end(), global_psm_better);
        if (result.top.size() > top_k) result.top.resize(top_k);
      }
      report.results = std::move(merged);
    }
    times.finish = comm.vclock();
  });

  report.makespan = 0.0;
  for (const auto& t : report.times) {
    report.makespan = std::max(report.makespan, t.finish);
  }
  return report;
}

SharedBaselineReport run_shared_baseline(
    const core::LbePlan& plan, const std::vector<chem::Spectrum>& queries,
    const DistributedParams& params) {
  SharedBaselineReport report;

  Stopwatch build_timer;
  const index::ChunkedIndex global(plan.build_global_store(), plan.mods(),
                                   params.index, params.chunking);
  report.build_seconds = build_timer.seconds();
  report.index_bytes = global.memory_bytes();

  const QueryEngine engine(global, plan.mods(), params.search);
  Stopwatch query_timer;
  report.results.resize(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const QueryResult local =
        engine.search(queries[q], static_cast<std::uint32_t>(q), report.work);
    auto& slot = report.results[q];
    slot.query_id = local.query_id;
    for (const Psm& psm : local.top) {
      // Global store: local ids are already global ids.
      slot.top.push_back(
          GlobalPsm{psm.peptide, psm.shared_peaks, psm.score, 0});
    }
  }
  report.query_seconds = query_timer.seconds();
  return report;
}

}  // namespace lbe::search
