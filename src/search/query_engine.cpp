#include "search/query_engine.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/error.hpp"

namespace lbe::search {

double filter_score(std::uint32_t shared_peaks, double matched_intensity) {
  // Delegates to the index-layer definition so block-max pruning bounds
  // the exact arithmetic the engine ranks with.
  return index::candidate_filter_score(shared_peaks, matched_intensity);
}

bool psm_better(const Psm& a, const Psm& b) {
  if (a.score != b.score) return a.score > b.score;
  if (a.shared_peaks != b.shared_peaks) return a.shared_peaks > b.shared_peaks;
  return a.peptide < b.peptide;
}

QueryEngine::QueryEngine(const index::ChunkedIndex& index,
                         const chem::ModificationSet& mods,
                         const SearchParams& params)
    : index_(&index), mods_(&mods), params_(params) {
  LBE_CHECK(params_.top_k >= 1, "top_k must be >= 1");
  // Arm the score-threshold half of block-max pruning with the report
  // depth: final PSMs are always the top_k best by *filter* score (the
  // optional rescoring pass only reorders within that set), so a block
  // whose score bound stays below the K-th final candidate cannot change
  // psms.tsv.
  params_.filter.prune_top_k = params_.filter.prune_blocks ? params_.top_k : 0;
}

QueryResult QueryEngine::search(const chem::Spectrum& raw,
                                std::uint32_t query_id,
                                index::QueryWork& work,
                                index::QueryArena& arena) const {
  const chem::Spectrum query = preprocess(raw, params_.preprocess);
  return search_preprocessed(query, query_id, work, arena);
}

QueryResult QueryEngine::search(const chem::Spectrum& raw,
                                std::uint32_t query_id,
                                index::QueryWork& work) const {
  return search(raw, query_id, work, internal_arena_);
}

QueryResult QueryEngine::search_preprocessed(const chem::Spectrum& query,
                                             std::uint32_t query_id,
                                             index::QueryWork& work,
                                             index::QueryArena& arena) const {
  QueryResult result;
  result.query_id = query_id;

  std::vector<index::Candidate>& candidates = arena.candidates;
  candidates.clear();
  index_->query(query, params_.filter, candidates, work, arena);
  result.candidates = candidates.size();
  work.candidates_scored += candidates.size();
  if (candidates.empty()) return result;

  // O(1)-per-candidate filter score; selection is the only O(n log k) step.
  const std::size_t keep =
      std::min<std::size_t>(params_.top_k, candidates.size());
  std::partial_sort(
      candidates.begin(),
      candidates.begin() + static_cast<std::ptrdiff_t>(keep),
      candidates.end(),
      [](const index::Candidate& a, const index::Candidate& b) {
        const double sa = filter_score(a.shared_peaks,
                                       static_cast<double>(a.matched_intensity));
        const double sb = filter_score(b.shared_peaks,
                                       static_cast<double>(b.matched_intensity));
        if (sa != sb) return sa > sb;
        if (a.shared_peaks != b.shared_peaks) {
          return a.shared_peaks > b.shared_peaks;
        }
        return a.peptide < b.peptide;
      });

  result.top.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) {
    const auto& candidate = candidates[i];
    result.top.push_back(Psm{
        candidate.peptide, candidate.shared_peaks,
        static_cast<float>(filter_score(
            candidate.shared_peaks,
            static_cast<double>(candidate.matched_intensity)))});
  }

  // Optional full b/y-aware rescoring of the leading candidates. Only
  // meaningful on a complete (shared-memory) index: rank-local rescoring
  // would break cross-partition score comparability.
  if (params_.rescore_depth > 0) {
    const std::size_t depth =
        std::min<std::size_t>(params_.rescore_depth, result.top.size());
    for (std::size_t i = 0; i < depth; ++i) {
      const chem::Peptide peptide =
          index_->store().materialize(result.top[i].peptide);
      const ScoreBreakdown breakdown =
          score_candidate(query, peptide, *mods_, params_.score);
      result.top[i].score = static_cast<float>(breakdown.hyperscore);
    }
    std::sort(result.top.begin(), result.top.end(), psm_better);
  }
  return result;
}

std::vector<QueryResult> QueryEngine::search_all(
    const std::vector<chem::Spectrum>& raw_queries, index::QueryWork& work,
    ThreadPool* pool) const {
  std::vector<QueryResult> results(raw_queries.size());
  search_range(raw_queries, 0, raw_queries.size(), results, work, pool);
  return results;
}

void QueryEngine::search_range(const std::vector<chem::Spectrum>& raw_queries,
                               std::size_t lo, std::size_t hi,
                               std::vector<QueryResult>& results,
                               index::QueryWork& work, ThreadPool* pool,
                               std::vector<index::QueryWork>* per_query) const {
  LBE_CHECK(lo <= hi && hi <= raw_queries.size(), "bad query range");
  LBE_CHECK(results.size() >= hi, "result buffer too small for range");
  LBE_CHECK(per_query == nullptr || per_query->size() >= hi,
            "per-query work buffer too small for range");
  if (pool == nullptr || pool->size() == 1 || hi - lo < 2) {
    if (per_query == nullptr) {
      for (std::size_t i = lo; i < hi; ++i) {
        results[i] =
            search(raw_queries[i], static_cast<std::uint32_t>(i), work);
      }
      return;
    }
    for (std::size_t i = lo; i < hi; ++i) {
      (*per_query)[i] = index::QueryWork{};
      results[i] = search(raw_queries[i], static_cast<std::uint32_t>(i),
                          (*per_query)[i]);
      work += (*per_query)[i];
    }
    return;
  }

  // Hybrid mode: split the range over the pool. Every block runs the whole
  // per-query pipeline — preprocessing, filtration, scoring — against its
  // private arena; the shared index is read-only, so no lock is needed.
  // Work counters are per-block (or per-query) and merged at the end so
  // totals stay exact.
  std::vector<index::QueryWork> block_work(pool->size());
  std::vector<index::QueryArena> block_arenas(pool->size());
  std::atomic<std::size_t> block_counter{0};
  pool->parallel_for(lo, hi, [&](std::size_t block_lo, std::size_t block_hi) {
    const std::size_t block = block_counter.fetch_add(1);
    for (std::size_t i = block_lo; i < block_hi; ++i) {
      if (per_query != nullptr) {
        (*per_query)[i] = index::QueryWork{};
        results[i] = search(raw_queries[i], static_cast<std::uint32_t>(i),
                            (*per_query)[i], block_arenas[block]);
        block_work[block] += (*per_query)[i];
      } else {
        results[i] = search(raw_queries[i], static_cast<std::uint32_t>(i),
                            block_work[block], block_arenas[block]);
      }
    }
  });
  for (const auto& bw : block_work) work += bw;
}

}  // namespace lbe::search
