// Wire codecs for search jobs crossing a process boundary.
//
// Two consumers frame these payloads: the serving daemon (serve/protocol.hpp
// ships spectra inside "LBES" search requests) and the multi-process rank
// transport (simmpi/process.hpp ships a whole SearchSetup to every worker
// and gets RankStats back). Keeping the codecs here — not duplicated per
// consumer — is what guarantees a spectrum serialized by the daemon and one
// serialized for a rank worker are the same bytes.
//
// All decoders are defensive: a malformed payload throws CommError (via
// ByteReader underrun checks plus explicit shape checks), never UB.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chem/modification.hpp"
#include "chem/spectrum.hpp"
#include "index/slm_index.hpp"
#include "search/distributed.hpp"
#include "simmpi/bytes.hpp"

namespace lbe::search::wire {

/// Serializes one spectrum: scan id, precursor, title, parallel peak arrays.
void write_spectrum(mpi::ByteWriter& writer, const chem::Spectrum& spectrum);

/// Rebuilds a spectrum *without* finalize(): a finalized source spectrum
/// arrives already sorted and merged, and re-merging could fuse peaks that
/// only became 1e-6-close after the first merge — desyncing the receiver
/// from the sender's one-shot results. Unsorted (hand-crafted) input is
/// still safe: preprocessing sorts and drops non-finite peaks defensively.
chem::Spectrum read_spectrum(mpi::ByteReader& reader);

void write_modifications(mpi::ByteWriter& writer,
                         const chem::ModificationSet& mods);
/// Rebuilds the set via add() in serialized order, so ModIds — which index
/// entries encode — survive the hop.
chem::ModificationSet read_modifications(mpi::ByteReader& reader);

void write_index_params(mpi::ByteWriter& writer,
                        const index::IndexParams& params);
index::IndexParams read_index_params(mpi::ByteReader& reader);

void write_search_params(mpi::ByteWriter& writer, const SearchParams& params);
SearchParams read_search_params(mpi::ByteReader& reader);

/// Everything a worker rank needs to reproduce the master's search exactly:
/// where the shared bundle lives, the SIMD decode level to pin (so all
/// ranks take the same kernels), the full parameter set, and the query
/// spectra (standing in for the MS2 file on shared storage).
struct SearchSetup {
  std::string bundle_dir;
  std::string simd_level;  ///< "" = leave the worker's default dispatch
  chem::ModificationSet mods;
  index::IndexParams index_params;
  SearchParams search;
  std::uint32_t result_batch = 256;
  std::uint32_t threads_per_rank = 1;
  std::vector<chem::Spectrum> queries;
};

mpi::Bytes encode_search_setup(const SearchSetup& setup);
SearchSetup decode_search_setup(const mpi::Bytes& payload);

/// Per-rank phase/work accounting shipped to the master at the end of a
/// distributed search (kStatsTag), on every backend, so metrics and reports
/// are backend-independent.
struct RankStats {
  PhaseTimes times;
  index::QueryWork work;
  std::uint64_t index_bytes = 0;
  std::uint64_t index_entries = 0;
};

mpi::Bytes encode_rank_stats(const RankStats& stats);
RankStats decode_rank_stats(const mpi::Bytes& payload);

}  // namespace lbe::search::wire
