// Wire codecs for search jobs crossing a process boundary.
//
// Two consumers frame these payloads: the serving daemon (serve/protocol.hpp
// ships spectra inside "LBES" search requests) and the multi-process rank
// transport (simmpi/process.hpp ships a whole SearchSetup to every worker
// and gets RankStats back). Keeping the codecs here — not duplicated per
// consumer — is what guarantees a spectrum serialized by the daemon and one
// serialized for a rank worker are the same bytes.
//
// All decoders are defensive: a malformed payload throws CommError (via
// ByteReader underrun checks plus explicit shape checks), never UB.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chem/modification.hpp"
#include "chem/spectrum.hpp"
#include "index/slm_index.hpp"
#include "search/distributed.hpp"
#include "simmpi/bytes.hpp"

namespace lbe::search::wire {

/// Serializes one spectrum: scan id, precursor, title, parallel peak arrays.
void write_spectrum(mpi::ByteWriter& writer, const chem::Spectrum& spectrum);

/// Rebuilds a spectrum *without* finalize(): a finalized source spectrum
/// arrives already sorted and merged, and re-merging could fuse peaks that
/// only became 1e-6-close after the first merge — desyncing the receiver
/// from the sender's one-shot results. Unsorted (hand-crafted) input is
/// still safe: preprocessing sorts and drops non-finite peaks defensively.
chem::Spectrum read_spectrum(mpi::ByteReader& reader);

void write_modifications(mpi::ByteWriter& writer,
                         const chem::ModificationSet& mods);
/// Rebuilds the set via add() in serialized order, so ModIds — which index
/// entries encode — survive the hop.
chem::ModificationSet read_modifications(mpi::ByteReader& reader);

void write_index_params(mpi::ByteWriter& writer,
                        const index::IndexParams& params);
index::IndexParams read_index_params(mpi::ByteReader& reader);

/// Per-query observed work counters, field-by-field in declaration order.
/// Result batches carry one per query so the scheduling layer can refit the
/// Eq. 1 cost model against what actually ran.
void write_query_work(mpi::ByteWriter& writer, const index::QueryWork& work);
index::QueryWork read_query_work(mpi::ByteReader& reader);

void write_search_params(mpi::ByteWriter& writer, const SearchParams& params);
SearchParams read_search_params(mpi::ByteReader& reader);

/// Everything a worker rank needs to reproduce the master's search exactly:
/// where the shared bundle lives, the SIMD decode level to pin (so all
/// ranks take the same kernels), the full parameter set, and the query
/// spectra (standing in for the MS2 file on shared storage).
struct SearchSetup {
  std::string bundle_dir;
  std::string simd_level;  ///< "" = leave the worker's default dispatch
  chem::ModificationSet mods;
  index::IndexParams index_params;
  SearchParams search;
  std::uint32_t result_batch = 256;
  std::uint32_t threads_per_rank = 1;
  /// Scheduling policy the master runs; workers derive from it whether the
  /// steal protocol is live and whether to build the per-index cost model.
  core::ScheduleParams schedule;
  std::vector<chem::Spectrum> queries;
};

mpi::Bytes encode_search_setup(const SearchSetup& setup);
SearchSetup decode_search_setup(const mpi::Bytes& payload);

/// Worker -> master (kStealRequestTag): "my queue is empty, give me work".
/// Carries the requester's progress so the master's ledger never depends on
/// message-arrival heuristics.
struct StealRequest {
  std::uint64_t batches_executed = 0;
};

mpi::Bytes encode_steal_request(const StealRequest& request);
StealRequest decode_steal_request(const mpi::Bytes& payload);

/// Master -> worker (kStealGrantTag): either one claimed batch — queries
/// [query_lo, query_hi) searched against rank `index_rank`'s partial index —
/// or `done`, releasing the worker to its stats send.
struct StealGrant {
  bool done = false;
  std::int32_t index_rank = -1;
  std::uint64_t query_lo = 0;
  std::uint64_t query_hi = 0;
};

mpi::Bytes encode_steal_grant(const StealGrant& grant);
StealGrant decode_steal_grant(const mpi::Bytes& payload);

/// Master -> victim (kStealTailTag): "batches >= new_tail of your own queue
/// have been granted to a thief — stop before them". The victim applies the
/// cut monotonically (min with what it already saw). Arrival may race the
/// victim past the cut; the master deduplicates result cells, so a lost
/// race costs one duplicated batch, never a wrong result.
struct StealTailCut {
  std::uint64_t new_tail = 0;
};

mpi::Bytes encode_steal_tail_cut(const StealTailCut& cut);
StealTailCut decode_steal_tail_cut(const mpi::Bytes& payload);

/// Per-rank phase/work accounting shipped to the master at the end of a
/// distributed search (kStatsTag), on every backend, so metrics and reports
/// are backend-independent.
struct RankStats {
  PhaseTimes times;
  index::QueryWork work;
  std::uint64_t index_bytes = 0;
  std::uint64_t index_entries = 0;
  std::uint64_t batches_executed = 0;  ///< result batches this rank searched
  std::uint64_t batches_stolen = 0;    ///< of those, claimed from other ranks
};

mpi::Bytes encode_rank_stats(const RankStats& stats);
RankStats decode_rank_stats(const mpi::Bytes& payload);

}  // namespace lbe::search::wire
