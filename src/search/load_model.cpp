#include "search/load_model.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

namespace lbe::search {

QueryCostModel::QueryCostModel(const index::ChunkedIndex& index,
                               const index::QueryParams& filter,
                               const PreprocessParams& preprocess)
    : binning_(index.index_params().binning()),
      // Prefix sums let each coalesced bin span be summed in O(1); the
      // index caches them so construction is O(1) after the first model.
      prefix_(&index.occupancy_prefix()),
      preprocess_(preprocess) {
  tol_bins_ = binning_.tolerance_bins(filter.fragment_tolerance);
}

double QueryCostModel::predict(const chem::Spectrum& raw) const {
  const chem::Spectrum query = preprocess(raw, preprocess_);
  const index::MzBin last_bin = binning_.num_bins() - 1;
  const std::vector<std::uint64_t>& prefix = *prefix_;

  // The engine coalesces overlapping peak windows into spans and walks
  // each posting slice once (SlmIndex::build_spans), so the model must
  // merge too: summing per-peak windows independently double-counts every
  // bin covered by several peaks and systematically overestimates dense
  // spectra, skewing LBE placement. Same two-pointer merge over sorted
  // half-open [lo, hi) windows.
  std::vector<std::pair<index::MzBin, index::MzBin>> windows;
  for (const Mz mz : query.mzs()) {
    if (!binning_.in_range(mz)) continue;
    const index::MzBin center = binning_.bin(mz);
    const index::MzBin lo = center > tol_bins_ ? center - tol_bins_ : 0;
    // Guard the `center + tol_bins` sum against MzBin wraparound (a huge
    // tolerance must clamp to the last bin, not wrap to a tiny one).
    const index::MzBin hi =
        tol_bins_ >= last_bin - center ? last_bin : center + tol_bins_;
    windows.emplace_back(lo, hi + 1);
  }
  // Preprocessed spectra emit peaks m/z-sorted, so the windows arrive
  // sorted by `lo` already; the sort is a no-op guard for callers that
  // hand in unfinalized spectra.
  if (!std::is_sorted(windows.begin(), windows.end())) {
    std::sort(windows.begin(), windows.end());
  }
  double predicted = 0.0;
  index::MzBin span_lo = 0;
  index::MzBin span_hi = 0;  // exclusive; empty when span_lo == span_hi
  for (const auto& [lo, hi] : windows) {
    if (lo > span_hi) {  // disjoint: flush the current merged span
      predicted += static_cast<double>(prefix[span_hi] - prefix[span_lo]);
      span_lo = lo;
      span_hi = hi;
    } else {
      span_hi = std::max(span_hi, hi);
    }
  }
  predicted += static_cast<double>(prefix[span_hi] - prefix[span_lo]);
  return predicted;
}

double predict_query_cost(const index::ChunkedIndex& index,
                          const std::vector<chem::Spectrum>& queries,
                          const index::QueryParams& filter,
                          const PreprocessParams& preprocess_params) {
  const QueryCostModel model(index, filter, preprocess_params);
  double predicted = 0.0;
  for (const auto& raw : queries) predicted += model.predict(raw);
  return predicted;
}

double prediction_correlation(const std::vector<double>& predicted,
                              const std::vector<double>& measured) {
  if (predicted.size() != measured.size() || predicted.size() < 2) return 0.0;
  const auto n = static_cast<double>(predicted.size());
  double mean_p = 0.0;
  double mean_m = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    mean_p += predicted[i];
    mean_m += measured[i];
  }
  mean_p /= n;
  mean_m /= n;
  double cov = 0.0;
  double var_p = 0.0;
  double var_m = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double dp = predicted[i] - mean_p;
    const double dm = measured[i] - mean_m;
    cov += dp * dm;
    var_p += dp * dp;
    var_m += dm * dm;
  }
  if (var_p <= 0.0 || var_m <= 0.0) return 0.0;
  return cov / std::sqrt(var_p * var_m);
}

CostModelFit fit_cost_model(const std::vector<double>& predicted,
                            const std::vector<double>& observed) {
  CostModelFit fit;
  if (predicted.size() != observed.size() || predicted.empty()) return fit;
  fit.samples = predicted.size();

  // Ordinary least squares observed = slope * predicted + intercept; a
  // degenerate predictor (zero variance) keeps the identity slope.
  const auto n = static_cast<double>(predicted.size());
  double mean_p = 0.0;
  double mean_o = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    mean_p += predicted[i];
    mean_o += observed[i];
  }
  mean_p /= n;
  mean_o /= n;
  double cov = 0.0;
  double var_p = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double dp = predicted[i] - mean_p;
    cov += dp * (observed[i] - mean_o);
    var_p += dp * dp;
  }
  if (var_p > 0.0) {
    fit.slope = cov / var_p;
    fit.intercept = mean_o - fit.slope * mean_p;
  }

  std::vector<double> rel;
  rel.reserve(predicted.size());
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (observed[i] > 0.0) {
      rel.push_back(std::abs(predicted[i] - observed[i]) / observed[i]);
    }
  }
  if (!rel.empty()) {
    double sum = 0.0;
    for (const double e : rel) sum += e;
    fit.mean_rel_error = sum / static_cast<double>(rel.size());
    std::sort(rel.begin(), rel.end());
    const auto idx = static_cast<std::size_t>(
        0.95 * static_cast<double>(rel.size() - 1) + 0.5);
    fit.p95_rel_error = rel[std::min(idx, rel.size() - 1)];
  }
  return fit;
}

}  // namespace lbe::search
