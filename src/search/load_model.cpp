#include "search/load_model.hpp"

#include <cmath>

namespace lbe::search {

double predict_query_cost(const index::ChunkedIndex& index,
                          const std::vector<chem::Spectrum>& queries,
                          const index::QueryParams& filter,
                          const PreprocessParams& preprocess_params) {
  const index::Binning binning = index.index_params().binning();
  const auto occupancy = index.bin_occupancy();

  // Prefix sums let each peak's tolerance window be summed in O(1).
  std::vector<std::uint64_t> prefix(occupancy.size() + 1, 0);
  for (std::size_t b = 0; b < occupancy.size(); ++b) {
    prefix[b + 1] = prefix[b] + occupancy[b];
  }

  const index::MzBin tol_bins =
      binning.tolerance_bins(filter.fragment_tolerance);
  const index::MzBin last_bin = binning.num_bins() - 1;

  double predicted = 0.0;
  for (const auto& raw : queries) {
    const chem::Spectrum query = preprocess(raw, preprocess_params);
    for (const Mz mz : query.mzs()) {
      if (!binning.in_range(mz)) continue;
      const index::MzBin center = binning.bin(mz);
      const index::MzBin lo = center > tol_bins ? center - tol_bins : 0;
      const index::MzBin hi = std::min<index::MzBin>(center + tol_bins,
                                                     last_bin);
      predicted += static_cast<double>(prefix[hi + 1] - prefix[lo]);
    }
  }
  return predicted;
}

double prediction_correlation(const std::vector<double>& predicted,
                              const std::vector<double>& measured) {
  if (predicted.size() != measured.size() || predicted.size() < 2) return 0.0;
  const auto n = static_cast<double>(predicted.size());
  double mean_p = 0.0;
  double mean_m = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    mean_p += predicted[i];
    mean_m += measured[i];
  }
  mean_p /= n;
  mean_m /= n;
  double cov = 0.0;
  double var_p = 0.0;
  double var_m = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double dp = predicted[i] - mean_p;
    const double dm = measured[i] - mean_m;
    cov += dp * dm;
    var_p += dp * dp;
    var_m += dm * dm;
  }
  if (var_p <= 0.0 || var_m <= 0.0) return 0.0;
  return cov / std::sqrt(var_p * var_m);
}

}  // namespace lbe::search
