#include "search/load_model.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

namespace lbe::search {

double predict_query_cost(const index::ChunkedIndex& index,
                          const std::vector<chem::Spectrum>& queries,
                          const index::QueryParams& filter,
                          const PreprocessParams& preprocess_params) {
  const index::Binning binning = index.index_params().binning();
  const auto occupancy = index.bin_occupancy();

  // Prefix sums let each coalesced bin span be summed in O(1).
  std::vector<std::uint64_t> prefix(occupancy.size() + 1, 0);
  for (std::size_t b = 0; b < occupancy.size(); ++b) {
    prefix[b + 1] = prefix[b] + occupancy[b];
  }

  const index::MzBin tol_bins =
      binning.tolerance_bins(filter.fragment_tolerance);
  const index::MzBin last_bin = binning.num_bins() - 1;

  // The engine coalesces overlapping peak windows into spans and walks
  // each posting slice once (SlmIndex::build_spans), so the model must
  // merge too: summing per-peak windows independently double-counts every
  // bin covered by several peaks and systematically overestimates dense
  // spectra, skewing LBE placement. Same two-pointer merge over sorted
  // half-open [lo, hi) windows.
  double predicted = 0.0;
  std::vector<std::pair<index::MzBin, index::MzBin>> windows;
  for (const auto& raw : queries) {
    const chem::Spectrum query = preprocess(raw, preprocess_params);
    windows.clear();
    for (const Mz mz : query.mzs()) {
      if (!binning.in_range(mz)) continue;
      const index::MzBin center = binning.bin(mz);
      const index::MzBin lo = center > tol_bins ? center - tol_bins : 0;
      // Guard the `center + tol_bins` sum against MzBin wraparound (a huge
      // tolerance must clamp to the last bin, not wrap to a tiny one).
      const index::MzBin hi =
          tol_bins >= last_bin - center ? last_bin : center + tol_bins;
      windows.emplace_back(lo, hi + 1);
    }
    // Preprocessed spectra emit peaks m/z-sorted, so the windows arrive
    // sorted by `lo` already; the sort is a no-op guard for callers that
    // hand in unfinalized spectra.
    if (!std::is_sorted(windows.begin(), windows.end())) {
      std::sort(windows.begin(), windows.end());
    }
    index::MzBin span_lo = 0;
    index::MzBin span_hi = 0;  // exclusive; empty when span_lo == span_hi
    for (const auto& [lo, hi] : windows) {
      if (lo > span_hi) {  // disjoint: flush the current merged span
        predicted += static_cast<double>(prefix[span_hi] - prefix[span_lo]);
        span_lo = lo;
        span_hi = hi;
      } else {
        span_hi = std::max(span_hi, hi);
      }
    }
    predicted += static_cast<double>(prefix[span_hi] - prefix[span_lo]);
  }
  return predicted;
}

double prediction_correlation(const std::vector<double>& predicted,
                              const std::vector<double>& measured) {
  if (predicted.size() != measured.size() || predicted.size() < 2) return 0.0;
  const auto n = static_cast<double>(predicted.size());
  double mean_p = 0.0;
  double mean_m = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    mean_p += predicted[i];
    mean_m += measured[i];
  }
  mean_p /= n;
  mean_m /= n;
  double cov = 0.0;
  double var_p = 0.0;
  double var_m = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double dp = predicted[i] - mean_p;
    const double dm = measured[i] - mean_m;
    cov += dp * dm;
    var_p += dp * dp;
    var_m += dm * dm;
  }
  if (var_p <= 0.0 || var_m <= 0.0) return 0.0;
  return cov / std::sqrt(var_p * var_m);
}

}  // namespace lbe::search
