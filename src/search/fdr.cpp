#include "search/fdr.hpp"

#include <algorithm>
#include <numeric>

namespace lbe::search {

std::vector<double> compute_qvalues(const std::vector<FdrInput>& psms) {
  const std::size_t n = psms.size();
  std::vector<double> qvalues(n, 0.0);
  if (n == 0) return qvalues;

  // Order best-first; at equal score decoys first (conservative: they are
  // counted against every target at the same score).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&psms](std::size_t a, std::size_t b) {
    if (psms[a].score != psms[b].score) return psms[a].score > psms[b].score;
    if (psms[a].is_decoy != psms[b].is_decoy) return psms[a].is_decoy;
    return a < b;
  });

  // Walking FDR, then min-from-the-bottom to make it monotone (q-values).
  std::vector<double> fdr(n, 0.0);
  std::size_t targets = 0;
  std::size_t decoys = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (psms[order[i]].is_decoy) {
      ++decoys;
    } else {
      ++targets;
    }
    fdr[i] = static_cast<double>(decoys) /
             static_cast<double>(std::max<std::size_t>(1, targets));
  }
  double running_min = fdr[n - 1];
  for (std::size_t i = n; i-- > 0;) {
    running_min = std::min(running_min, fdr[i]);
    qvalues[order[i]] = running_min;
  }
  return qvalues;
}

std::size_t accepted_at(const std::vector<FdrInput>& psms,
                        const std::vector<double>& qvalues,
                        double threshold) {
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < psms.size() && i < qvalues.size(); ++i) {
    if (!psms[i].is_decoy && qvalues[i] <= threshold) ++accepted;
  }
  return accepted;
}

}  // namespace lbe::search
