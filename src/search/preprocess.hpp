// Query-spectrum preprocessing.
//
// Mirrors the paper's SLM-Transform settings (§V-A): keep the N most intense
// peaks (N = 100), drop everything outside the indexed m/z range, and
// optionally normalize intensities to a fixed maximum so hyperscores are
// comparable across instruments/runs.
#pragma once

#include <cstdint>

#include "chem/spectrum.hpp"

namespace lbe::search {

struct PreprocessParams {
  std::uint32_t top_peaks = 100;  ///< keep the N most intense peaks
  Mz min_mz = 0.0;                ///< drop peaks below
  Mz max_mz = 5000.0;             ///< drop peaks above
  bool normalize = true;          ///< scale intensities to max = 100
};

/// Returns the reduced spectrum (peaks sorted by m/z, precursor copied).
/// Deterministic: intensity ties are broken by ascending m/z.
chem::Spectrum preprocess(const chem::Spectrum& input,
                          const PreprocessParams& params);

}  // namespace lbe::search
