// PSM scoring.
//
// Filtration (the index) counts shared peaks; the survivors are re-scored
// with an X!Tandem-style hyperscore so ranking is intensity-aware:
//
//   hyperscore = ln(Nb!) + ln(Ny!) + ln(1 + sum Ib) + ln(1 + sum Iy)
//
// where Nb/Ny are matched b-/y-ion counts and Ib/Iy the summed intensities
// of matched query peaks. Matching walks the (sorted) query peaks and the
// (sorted) theoretical fragments in one linear merge pass; each query peak
// matches at most once per series.
#pragma once

#include <cstdint>

#include "chem/modification.hpp"
#include "chem/spectrum.hpp"
#include "index/peptide_store.hpp"
#include "theospec/fragmenter.hpp"

namespace lbe::search {

struct ScoreParams {
  double fragment_tolerance = 0.05;  ///< ±Da, same as the filtration ΔF
  theospec::FragmentParams fragments;
};

struct ScoreBreakdown {
  std::uint32_t matched_b = 0;
  std::uint32_t matched_y = 0;
  double intensity_b = 0.0;
  double intensity_y = 0.0;
  double hyperscore = 0.0;

  std::uint32_t matched_total() const { return matched_b + matched_y; }
};

/// Scores `peptide` against a preprocessed query spectrum.
ScoreBreakdown score_candidate(const chem::Spectrum& query,
                               const chem::Peptide& peptide,
                               const chem::ModificationSet& mods,
                               const ScoreParams& params);

/// ln(n!) via lgamma; exposed for tests.
double log_factorial(std::uint32_t n);

}  // namespace lbe::search
