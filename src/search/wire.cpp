#include "search/wire.hpp"

#include "common/error.hpp"

namespace lbe::search::wire {

namespace {

// Stops a small payload from *claiming* enormous element counts; the byte
// content itself is already bounded by the transport's frame-size check.
constexpr std::uint64_t kMaxWireQueries = 1u << 20;
constexpr std::uint64_t kMaxWireMods = 1u << 12;

void require(bool condition, const char* message) {
  if (!condition) throw CommError(message);
}

void write_fragment_params(mpi::ByteWriter& writer,
                           const theospec::FragmentParams& params) {
  writer.pod(params.max_fragment_charge);
  writer.pod(params.a_ions);
  writer.pod(params.neutral_loss_nh3);
  writer.pod(params.neutral_loss_h2o);
}

theospec::FragmentParams read_fragment_params(mpi::ByteReader& reader) {
  theospec::FragmentParams params;
  params.max_fragment_charge = reader.pod<Charge>();
  params.a_ions = reader.pod<bool>();
  params.neutral_loss_nh3 = reader.pod<bool>();
  params.neutral_loss_h2o = reader.pod<bool>();
  return params;
}

}  // namespace

void write_spectrum(mpi::ByteWriter& writer, const chem::Spectrum& spectrum) {
  writer.pod(spectrum.scan_id);
  writer.pod(spectrum.precursor.mz);
  writer.pod(spectrum.precursor.charge);
  writer.pod(spectrum.precursor.neutral_mass);
  writer.string(spectrum.title);
  writer.vector(spectrum.mzs());
  writer.vector(spectrum.intensities());
}

chem::Spectrum read_spectrum(mpi::ByteReader& reader) {
  chem::Spectrum spectrum;
  spectrum.scan_id = reader.pod<std::uint32_t>();
  spectrum.precursor.mz = reader.pod<Mz>();
  spectrum.precursor.charge = reader.pod<Charge>();
  spectrum.precursor.neutral_mass = reader.pod<Mass>();
  spectrum.title = reader.string();
  const auto mzs = reader.vector<Mz>();
  const auto intensities = reader.vector<float>();
  require(mzs.size() == intensities.size(),
          "malformed spectrum: mz/intensity length mismatch");
  // See the header: rebuild WITHOUT finalize() so an already-merged
  // spectrum is not merged a second time.
  for (std::size_t i = 0; i < mzs.size(); ++i) {
    spectrum.add_peak(mzs[i], intensities[i]);
  }
  return spectrum;
}

void write_modifications(mpi::ByteWriter& writer,
                         const chem::ModificationSet& mods) {
  writer.pod(static_cast<std::uint64_t>(mods.size()));
  for (std::size_t i = 0; i < mods.size(); ++i) {
    const chem::Modification& mod = mods[static_cast<chem::ModId>(i)];
    writer.string(mod.name);
    writer.pod(mod.delta);
    writer.string(mod.residues);
    writer.pod(mod.fixed);
  }
}

chem::ModificationSet read_modifications(mpi::ByteReader& reader) {
  const auto count = reader.pod<std::uint64_t>();
  require(count <= kMaxWireMods, "malformed payload: implausible mod count");
  chem::ModificationSet mods;
  for (std::uint64_t i = 0; i < count; ++i) {
    chem::Modification mod;
    mod.name = reader.string();
    mod.delta = reader.pod<Mass>();
    mod.residues = reader.string();
    mod.fixed = reader.pod<bool>();
    mods.add(std::move(mod));
  }
  return mods;
}

void write_index_params(mpi::ByteWriter& writer,
                        const index::IndexParams& params) {
  writer.pod(params.resolution);
  writer.pod(params.max_fragment_mz);
  write_fragment_params(writer, params.fragments);
}

index::IndexParams read_index_params(mpi::ByteReader& reader) {
  index::IndexParams params;
  params.resolution = reader.pod<double>();
  params.max_fragment_mz = reader.pod<Mz>();
  params.fragments = read_fragment_params(reader);
  return params;
}

void write_query_work(mpi::ByteWriter& writer, const index::QueryWork& work) {
  writer.pod(work.peaks_processed);
  writer.pod(work.bins_visited);
  writer.pod(work.postings_touched);
  writer.pod(work.candidates);
  writer.pod(work.spans_walked);
  writer.pod(work.spans_pruned);
  writer.pod(work.blocks_walked);
  writer.pod(work.blocks_pruned);
  writer.pod(work.candidates_scored);
}

index::QueryWork read_query_work(mpi::ByteReader& reader) {
  index::QueryWork work;
  work.peaks_processed = reader.pod<std::uint64_t>();
  work.bins_visited = reader.pod<std::uint64_t>();
  work.postings_touched = reader.pod<std::uint64_t>();
  work.candidates = reader.pod<std::uint64_t>();
  work.spans_walked = reader.pod<std::uint64_t>();
  work.spans_pruned = reader.pod<std::uint64_t>();
  work.blocks_walked = reader.pod<std::uint64_t>();
  work.blocks_pruned = reader.pod<std::uint64_t>();
  work.candidates_scored = reader.pod<std::uint64_t>();
  return work;
}

void write_search_params(mpi::ByteWriter& writer, const SearchParams& params) {
  writer.pod(params.preprocess.top_peaks);
  writer.pod(params.preprocess.min_mz);
  writer.pod(params.preprocess.max_mz);
  writer.pod(params.preprocess.normalize);
  writer.pod(params.filter.fragment_tolerance);
  writer.pod(params.filter.shared_peak_min);
  writer.pod(params.filter.precursor_tolerance);
  // prune_top_k travels implicitly: QueryEngine re-derives it from top_k.
  writer.pod(params.filter.prune_blocks);
  writer.pod(params.score.fragment_tolerance);
  write_fragment_params(writer, params.score.fragments);
  writer.pod(params.top_k);
  writer.pod(params.rescore_depth);
}

SearchParams read_search_params(mpi::ByteReader& reader) {
  SearchParams params;
  params.preprocess.top_peaks = reader.pod<std::uint32_t>();
  params.preprocess.min_mz = reader.pod<Mz>();
  params.preprocess.max_mz = reader.pod<Mz>();
  params.preprocess.normalize = reader.pod<bool>();
  params.filter.fragment_tolerance = reader.pod<double>();
  params.filter.shared_peak_min = reader.pod<std::uint32_t>();
  params.filter.precursor_tolerance = reader.pod<double>();
  params.filter.prune_blocks = reader.pod<bool>();
  params.score.fragment_tolerance = reader.pod<double>();
  params.score.fragments = read_fragment_params(reader);
  params.top_k = reader.pod<std::uint32_t>();
  params.rescore_depth = reader.pod<std::uint32_t>();
  return params;
}

mpi::Bytes encode_search_setup(const SearchSetup& setup) {
  mpi::Bytes bytes;
  mpi::ByteWriter writer(bytes);
  writer.string(setup.bundle_dir);
  writer.string(setup.simd_level);
  write_modifications(writer, setup.mods);
  write_index_params(writer, setup.index_params);
  write_search_params(writer, setup.search);
  writer.pod(setup.result_batch);
  writer.pod(setup.threads_per_rank);
  writer.pod(static_cast<std::uint8_t>(setup.schedule.schedule));
  writer.pod(setup.schedule.steal_threshold);
  writer.pod(setup.schedule.calibration_queries);
  writer.pod(static_cast<std::uint64_t>(setup.queries.size()));
  for (const auto& spectrum : setup.queries) write_spectrum(writer, spectrum);
  return bytes;
}

SearchSetup decode_search_setup(const mpi::Bytes& payload) {
  mpi::ByteReader reader(payload);
  SearchSetup setup;
  setup.bundle_dir = reader.string();
  setup.simd_level = reader.string();
  setup.mods = read_modifications(reader);
  setup.index_params = read_index_params(reader);
  setup.search = read_search_params(reader);
  setup.result_batch = reader.pod<std::uint32_t>();
  setup.threads_per_rank = reader.pod<std::uint32_t>();
  const auto schedule = reader.pod<std::uint8_t>();
  require(schedule <= static_cast<std::uint8_t>(core::Schedule::kStealing),
          "malformed setup: unknown schedule");
  setup.schedule.schedule = static_cast<core::Schedule>(schedule);
  setup.schedule.steal_threshold = reader.pod<double>();
  setup.schedule.calibration_queries = reader.pod<std::uint32_t>();
  const auto count = reader.pod<std::uint64_t>();
  require(count <= kMaxWireQueries,
          "malformed setup: implausible query count");
  setup.queries.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    setup.queries.push_back(read_spectrum(reader));
  }
  require(reader.exhausted(), "malformed setup: trailing bytes");
  return setup;
}

mpi::Bytes encode_rank_stats(const RankStats& stats) {
  mpi::Bytes bytes;
  mpi::ByteWriter writer(bytes);
  writer.pod(stats.times.start);
  writer.pod(stats.times.build_done);
  writer.pod(stats.times.query_start);
  writer.pod(stats.times.query_done);
  writer.pod(stats.times.finish);
  writer.pod(stats.work.peaks_processed);
  writer.pod(stats.work.bins_visited);
  writer.pod(stats.work.postings_touched);
  writer.pod(stats.work.candidates);
  writer.pod(stats.work.spans_walked);
  writer.pod(stats.work.spans_pruned);
  writer.pod(stats.work.blocks_walked);
  writer.pod(stats.work.blocks_pruned);
  writer.pod(stats.work.candidates_scored);
  writer.pod(stats.index_bytes);
  writer.pod(stats.index_entries);
  writer.pod(stats.batches_executed);
  writer.pod(stats.batches_stolen);
  return bytes;
}

mpi::Bytes encode_steal_request(const StealRequest& request) {
  mpi::Bytes bytes;
  mpi::ByteWriter writer(bytes);
  writer.pod(request.batches_executed);
  return bytes;
}

StealRequest decode_steal_request(const mpi::Bytes& payload) {
  mpi::ByteReader reader(payload);
  StealRequest request;
  request.batches_executed = reader.pod<std::uint64_t>();
  require(reader.exhausted(), "malformed steal request: trailing bytes");
  return request;
}

mpi::Bytes encode_steal_grant(const StealGrant& grant) {
  mpi::Bytes bytes;
  mpi::ByteWriter writer(bytes);
  writer.pod(grant.done);
  writer.pod(grant.index_rank);
  writer.pod(grant.query_lo);
  writer.pod(grant.query_hi);
  return bytes;
}

StealGrant decode_steal_grant(const mpi::Bytes& payload) {
  mpi::ByteReader reader(payload);
  StealGrant grant;
  grant.done = reader.pod<bool>();
  grant.index_rank = reader.pod<std::int32_t>();
  grant.query_lo = reader.pod<std::uint64_t>();
  grant.query_hi = reader.pod<std::uint64_t>();
  require(reader.exhausted(), "malformed steal grant: trailing bytes");
  require(grant.done || (grant.index_rank >= 0 && grant.query_lo < grant.query_hi),
          "malformed steal grant: empty batch");
  return grant;
}

mpi::Bytes encode_steal_tail_cut(const StealTailCut& cut) {
  mpi::Bytes bytes;
  mpi::ByteWriter writer(bytes);
  writer.pod(cut.new_tail);
  return bytes;
}

StealTailCut decode_steal_tail_cut(const mpi::Bytes& payload) {
  mpi::ByteReader reader(payload);
  StealTailCut cut;
  cut.new_tail = reader.pod<std::uint64_t>();
  require(reader.exhausted(), "malformed steal tail cut: trailing bytes");
  return cut;
}

RankStats decode_rank_stats(const mpi::Bytes& payload) {
  mpi::ByteReader reader(payload);
  RankStats stats;
  stats.times.start = reader.pod<double>();
  stats.times.build_done = reader.pod<double>();
  stats.times.query_start = reader.pod<double>();
  stats.times.query_done = reader.pod<double>();
  stats.times.finish = reader.pod<double>();
  stats.work.peaks_processed = reader.pod<std::uint64_t>();
  stats.work.bins_visited = reader.pod<std::uint64_t>();
  stats.work.postings_touched = reader.pod<std::uint64_t>();
  stats.work.candidates = reader.pod<std::uint64_t>();
  stats.work.spans_walked = reader.pod<std::uint64_t>();
  stats.work.spans_pruned = reader.pod<std::uint64_t>();
  stats.work.blocks_walked = reader.pod<std::uint64_t>();
  stats.work.blocks_pruned = reader.pod<std::uint64_t>();
  stats.work.candidates_scored = reader.pod<std::uint64_t>();
  stats.index_bytes = reader.pod<std::uint64_t>();
  stats.index_entries = reader.pod<std::uint64_t>();
  stats.batches_executed = reader.pod<std::uint64_t>();
  stats.batches_stolen = reader.pod<std::uint64_t>();
  require(reader.exhausted(), "malformed rank stats: trailing bytes");
  return stats;
}

}  // namespace lbe::search::wire
