#include "search/preprocess.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace lbe::search {

chem::Spectrum preprocess(const chem::Spectrum& input,
                          const PreprocessParams& params) {
  // Collect indices of in-range peaks. Non-finite values are dropped here,
  // before any ordering: a NaN intensity would break the strict weak
  // ordering of the top-N comparator below (UB in partial_sort), and a
  // NaN/Inf m/z can neither be binned nor kept in m/z order.
  std::vector<std::size_t> idx;
  idx.reserve(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    const Mz mz = input.mz(i);
    if (!std::isfinite(mz) || !std::isfinite(input.intensity(i))) continue;
    if (mz >= params.min_mz && mz <= params.max_mz) idx.push_back(i);
  }

  // Select top-N by intensity (ties: lower m/z wins, fully deterministic).
  const std::size_t keep =
      std::min<std::size_t>(params.top_peaks, idx.size());
  std::partial_sort(idx.begin(),
                    idx.begin() + static_cast<std::ptrdiff_t>(keep),
                    idx.end(), [&input](std::size_t a, std::size_t b) {
                      if (input.intensity(a) != input.intensity(b)) {
                        return input.intensity(a) > input.intensity(b);
                      }
                      return input.mz(a) < input.mz(b);
                    });
  idx.resize(keep);

  float peak_max = 0.0f;
  for (const std::size_t i : idx) {
    peak_max = std::max(peak_max, input.intensity(i));
  }
  const float scale =
      (params.normalize && peak_max > 0.0f) ? 100.0f / peak_max : 1.0f;

  // Emit in m/z order directly: finalized inputs are already sorted, so
  // sorting the kept indices restores order without a finalize() pass.
  std::sort(idx.begin(), idx.end());
  chem::Spectrum out;
  bool sorted = true;
  Mz prev = -1.0;
  for (const std::size_t i : idx) {
    const Mz mz = input.mz(i);
    sorted = sorted && mz > prev;
    prev = mz;
    out.add_peak(mz, input.intensity(i) * scale);
  }
  if (!sorted) out.finalize();  // caller passed an unfinalized spectrum
  out.precursor = input.precursor;
  out.scan_id = input.scan_id;
  out.title = input.title;
  return out;
}

}  // namespace lbe::search
