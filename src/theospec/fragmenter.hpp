// Theoretical fragment-ion generation (b/y series).
//
// Collision-induced dissociation predominantly breaks the amide backbone,
// yielding N-terminal b-ions and C-terminal y-ions. For a peptide of length
// n there are n-1 b and n-1 y fragments per charge state. The SLM-style
// index stores exactly these ions; optional a-ions and neutral losses are
// provided for the open-search example but excluded from the default index
// to match SLM-Transform.
#pragma once

#include <cstdint>
#include <vector>

#include "chem/modification.hpp"
#include "chem/peptide.hpp"
#include "chem/spectrum.hpp"
#include "common/types.hpp"

namespace lbe::theospec {

enum class IonSeries : std::uint8_t { kB, kY, kA };

struct FragmentParams {
  Charge max_fragment_charge = 2;  ///< generate 1+ .. this charge
  bool a_ions = false;
  bool neutral_loss_nh3 = false;  ///< -17.027 variants of b/y
  bool neutral_loss_h2o = false;  ///< -18.011 variants of b/y
};

struct Fragment {
  Mz mz;
  IonSeries series;
  std::uint16_t ordinal;  ///< b3 -> 3, y5 -> 5
  Charge charge;
};

/// All fragments for one (possibly modified) peptide, ascending m/z.
std::vector<Fragment> fragment_peptide(const chem::Peptide& peptide,
                                       const chem::ModificationSet& mods,
                                       const FragmentParams& params);

/// Convenience: builds the theoretical Spectrum (unit intensities) used for
/// indexing; same fragments as `fragment_peptide`.
chem::Spectrum theoretical_spectrum(const chem::Peptide& peptide,
                                    const chem::ModificationSet& mods,
                                    const FragmentParams& params);

/// Number of fragments `fragment_peptide` yields, without materializing.
std::size_t fragment_count(std::size_t peptide_length,
                           const FragmentParams& params);

}  // namespace lbe::theospec
