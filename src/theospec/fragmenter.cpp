#include "theospec/fragmenter.hpp"

#include <algorithm>

#include "chem/mass.hpp"
#include "common/error.hpp"

namespace lbe::theospec {

std::vector<Fragment> fragment_peptide(const chem::Peptide& peptide,
                                       const chem::ModificationSet& mods,
                                       const FragmentParams& params) {
  LBE_CHECK(params.max_fragment_charge >= 1, "need max_fragment_charge >= 1");
  const std::size_t n = peptide.length();
  std::vector<Fragment> out;
  if (n < 2) return out;

  // Prefix sums of residue deltas give every b/y neutral mass in O(n).
  std::vector<Mass> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] + peptide.residue_delta(i, mods);
  }
  const Mass total = prefix[n];

  out.reserve(fragment_count(n, params));
  auto emit = [&](Mass neutral, IonSeries series, std::uint16_t ordinal) {
    for (Charge z = 1; z <= params.max_fragment_charge; ++z) {
      out.push_back(
          Fragment{chem::mz_from_mass(neutral, z), series, ordinal, z});
    }
    if (params.neutral_loss_nh3 && series != IonSeries::kA) {
      for (Charge z = 1; z <= params.max_fragment_charge; ++z) {
        out.push_back(Fragment{chem::mz_from_mass(neutral - chem::kAmmonia, z),
                               series, ordinal, z});
      }
    }
    if (params.neutral_loss_h2o && series != IonSeries::kA) {
      for (Charge z = 1; z <= params.max_fragment_charge; ++z) {
        out.push_back(Fragment{chem::mz_from_mass(neutral - chem::kWater, z),
                               series, ordinal, z});
      }
    }
  };

  for (std::size_t i = 1; i < n; ++i) {
    // b_i: first i residues; neutral b mass = sum(residues) (acylium form).
    const Mass b_neutral = prefix[i];
    emit(b_neutral, IonSeries::kB, static_cast<std::uint16_t>(i));
    if (params.a_ions) {
      emit(b_neutral - chem::kCarbonMonoxide, IonSeries::kA,
           static_cast<std::uint16_t>(i));
    }
    // y_{n-i}: last n-i residues plus water.
    const Mass y_neutral = total - prefix[i] + chem::kWater;
    emit(y_neutral, IonSeries::kY, static_cast<std::uint16_t>(n - i));
  }

  std::sort(out.begin(), out.end(),
            [](const Fragment& a, const Fragment& b) { return a.mz < b.mz; });
  return out;
}

chem::Spectrum theoretical_spectrum(const chem::Peptide& peptide,
                                    const chem::ModificationSet& mods,
                                    const FragmentParams& params) {
  chem::Spectrum spec;
  for (const auto& fragment : fragment_peptide(peptide, mods, params)) {
    spec.add_peak(fragment.mz, 1.0f);
  }
  spec.precursor.neutral_mass = peptide.mass(mods);
  spec.precursor.charge = 2;
  spec.precursor.mz =
      chem::mz_from_mass(spec.precursor.neutral_mass, spec.precursor.charge);
  spec.finalize();
  return spec;
}

std::size_t fragment_count(std::size_t peptide_length,
                           const FragmentParams& params) {
  if (peptide_length < 2) return 0;
  const std::size_t cuts = peptide_length - 1;
  const std::size_t z = params.max_fragment_charge;
  std::size_t per_cut = 2 * z;                       // b + y
  if (params.a_ions) per_cut += z;                   // a
  if (params.neutral_loss_nh3) per_cut += 2 * z;     // b/y - NH3
  if (params.neutral_loss_h2o) per_cut += 2 * z;     // b/y - H2O
  return cuts * per_cut;
}

}  // namespace lbe::theospec
