#include "index/peptide_store.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/binary_io.hpp"
#include "common/error.hpp"
#include "common/mmap_file.hpp"
#include "index/serialize.hpp"

namespace lbe::index {

namespace {

/// The five column views parsed out of one kSecColumns payload. Offsets
/// inside the payload keep the file's mod-8 phase (the payload itself
/// starts 8-aligned), so the same parse serves the mapped path (views into
/// the mapping) and the stream path (views into a scratch buffer, copied).
struct ColumnViews {
  std::string_view arena;
  std::span<const std::uint64_t> offsets;
  std::span<const chem::ModSite> sites;
  std::span<const std::uint64_t> site_offsets;
  std::span<const Mass> masses;
};

ColumnViews parse_columns(bin::ByteReader& reader) {
  namespace sz = serialize;
  const auto arena_size = reader.read_pod<std::uint64_t>();
  const auto offsets_count = reader.read_pod<std::uint64_t>();
  const auto sites_count = reader.read_pod<std::uint64_t>();
  const auto site_offsets_count = reader.read_pod<std::uint64_t>();
  const auto masses_count = reader.read_pod<std::uint64_t>();
  sz::require(arena_size <= bin::kMaxSectionBytes &&
                  offsets_count <= bin::kMaxElements &&
                  sites_count <= bin::kMaxElements &&
                  site_offsets_count <= bin::kMaxElements &&
                  masses_count <= bin::kMaxElements,
              "implausible peptide store column size");

  ColumnViews v;
  const auto arena_bytes = reader.take(static_cast<std::size_t>(arena_size));
  v.arena = std::string_view(reinterpret_cast<const char*>(arena_bytes.data()),
                             arena_bytes.size());
  reader.align();
  v.offsets = reader.view_array<std::uint64_t>(
      static_cast<std::size_t>(offsets_count));
  reader.align();
  v.sites =
      reader.view_array<chem::ModSite>(static_cast<std::size_t>(sites_count));
  reader.align();
  v.site_offsets = reader.view_array<std::uint64_t>(
      static_cast<std::size_t>(site_offsets_count));
  reader.align();
  v.masses = reader.view_array<Mass>(static_cast<std::size_t>(masses_count));
  reader.align();
  return v;
}

/// Structural validation shared by every load path: CSR invariants must
/// hold or lookups would read out of bounds later. The CRC catches bit
/// rot; these catch truncated or hand-assembled payloads.
void validate_columns(const ColumnViews& v) {
  namespace sz = serialize;
  sz::require(!v.offsets.empty() && v.offsets.front() == 0 &&
                  v.offsets.back() == v.arena.size(),
              "peptide store sequence offsets");
  sz::require(v.site_offsets.size() == v.offsets.size() &&
                  v.site_offsets.front() == 0 &&
                  v.site_offsets.back() == v.sites.size(),
              "peptide store site offsets");
  sz::require(v.masses.size() == v.offsets.size() - 1,
              "peptide store mass column");
  for (std::size_t i = 1; i < v.offsets.size(); ++i) {
    sz::require(v.offsets[i] >= v.offsets[i - 1] &&
                    v.site_offsets[i] >= v.site_offsets[i - 1],
                "peptide store non-monotone offsets");
  }
}

template <typename T>
std::vector<T> copy_array(std::span<const T> view) {
  std::vector<T> out(view.size());
  if (!view.empty()) {
    std::memcpy(out.data(), view.data(), view.size() * sizeof(T));
  }
  return out;
}

}  // namespace

PeptideStore::PeptideStore(const PeptideStore& other)
    : mods_(other.mods_),
      arena_(other.arena_),
      offsets_(other.offsets_),
      sites_(other.sites_),
      site_offsets_(other.site_offsets_),
      masses_(other.masses_),
      keepalive_(other.keepalive_) {
  adopt_views_or_rebind(other);
}

PeptideStore& PeptideStore::operator=(const PeptideStore& other) {
  if (this == &other) return *this;
  mods_ = other.mods_;
  arena_ = other.arena_;
  offsets_ = other.offsets_;
  sites_ = other.sites_;
  site_offsets_ = other.site_offsets_;
  masses_ = other.masses_;
  keepalive_ = other.keepalive_;
  adopt_views_or_rebind(other);
  return *this;
}

PeptideStore::PeptideStore(PeptideStore&& other) noexcept
    : mods_(other.mods_),
      arena_(std::move(other.arena_)),
      offsets_(std::move(other.offsets_)),
      sites_(std::move(other.sites_)),
      site_offsets_(std::move(other.site_offsets_)),
      masses_(std::move(other.masses_)),
      keepalive_(std::move(other.keepalive_)) {
  adopt_views_or_rebind(other);
  other.reset_to_empty();  // leave the source a valid empty store
}

PeptideStore& PeptideStore::operator=(PeptideStore&& other) noexcept {
  if (this == &other) return *this;
  mods_ = other.mods_;
  arena_ = std::move(other.arena_);
  offsets_ = std::move(other.offsets_);
  sites_ = std::move(other.sites_);
  site_offsets_ = std::move(other.site_offsets_);
  masses_ = std::move(other.masses_);
  keepalive_ = std::move(other.keepalive_);
  adopt_views_or_rebind(other);
  other.reset_to_empty();
  return *this;
}

void PeptideStore::reset_to_empty() noexcept {
  // A moved-from vector is empty, but an empty *store* needs the CSR
  // sentinel element back or size() would underflow.
  arena_.clear();
  offsets_.assign(1, 0);
  sites_.clear();
  site_offsets_.assign(1, 0);
  masses_.clear();
  keepalive_.reset();
  rebind();
}

void PeptideStore::adopt_views_or_rebind(const PeptideStore& other) noexcept {
  if (keepalive_ != nullptr) {
    // Mapped columns: the views target the mapping, which is shared and
    // address-stable — adopt them verbatim.
    arena_v_ = other.arena_v_;
    offsets_v_ = other.offsets_v_;
    sites_v_ = other.sites_v_;
    site_offsets_v_ = other.site_offsets_v_;
    masses_v_ = other.masses_v_;
  } else {
    rebind();
  }
}

void PeptideStore::rebind() noexcept {
  arena_v_ = arena_;
  offsets_v_ = offsets_;
  sites_v_ = sites_;
  site_offsets_v_ = site_offsets_;
  masses_v_ = masses_;
}

LocalPeptideId PeptideStore::add(const chem::Peptide& peptide,
                                 const chem::ModificationSet& mods) {
  LBE_CHECK(!mapped(), "cannot append to a mapped peptide store");
  LBE_CHECK(size() < kInvalidPeptideId, "peptide store full");
  arena_.append(peptide.sequence());
  offsets_.push_back(arena_.size());
  for (const auto& site : peptide.sites()) sites_.push_back(site);
  site_offsets_.push_back(sites_.size());
  masses_.push_back(peptide.mass(mods));
  if (mods_ == nullptr) mods_ = &mods;
  rebind();
  return static_cast<LocalPeptideId>(size() - 1);
}

void PeptideStore::reserve(std::size_t n, std::size_t avg_len) {
  LBE_CHECK(!mapped(), "cannot reserve in a mapped peptide store");
  arena_.reserve(n * avg_len);
  offsets_.reserve(n + 1);
  site_offsets_.reserve(n + 1);
  masses_.reserve(n);
  rebind();
}

PeptideView PeptideStore::view(LocalPeptideId id) const {
  LBE_CHECK(id < size(), "peptide id out of range");
  PeptideView v;
  const std::uint64_t begin = offsets_v_[id];
  const std::uint64_t end = offsets_v_[id + 1];
  v.sequence = arena_v_.substr(begin, end - begin);
  const std::uint64_t site_begin = site_offsets_v_[id];
  const std::uint64_t site_end = site_offsets_v_[id + 1];
  v.sites = sites_v_.data() + site_begin;
  v.site_count = static_cast<std::uint32_t>(site_end - site_begin);
  v.mass = masses_v_[id];
  return v;
}

chem::Peptide PeptideStore::materialize(LocalPeptideId id) const {
  const PeptideView v = view(id);
  LBE_CHECK(mods_ != nullptr, "store has no modification set");
  std::vector<chem::ModSite> sites(v.sites, v.sites + v.site_count);
  return chem::Peptide(std::string(v.sequence), std::move(sites), *mods_);
}

std::uint64_t PeptideStore::memory_bytes() const noexcept {
  return arena_.capacity() +
         offsets_.capacity() * sizeof(std::uint64_t) +
         sites_.capacity() * sizeof(chem::ModSite) +
         site_offsets_.capacity() * sizeof(std::uint64_t) +
         masses_.capacity() * sizeof(Mass);
}

void PeptideStore::save(std::ostream& out) const {
  std::uint64_t cursor = 0;
  save(out, cursor);
}

void PeptideStore::save(std::ostream& out, std::uint64_t& cursor) const {
  namespace sz = serialize;
  sz::write_header(out, sz::Kind::kPeptideStore);
  cursor += sz::kHeaderBytes;

  // Size and CRC are computed over the columns directly (crc32_padded
  // chains the zero padding in), then the payload streams straight to the
  // file — no payload-sized scratch buffer. Payload-relative offsets and
  // file offsets agree mod 8: the section payload starts 8-aligned, so
  // the per-array padding below lands the arrays aligned in the file.
  const std::uint64_t counts[5] = {
      arena_v_.size(), offsets_v_.size(), sites_v_.size(),
      site_offsets_v_.size(), masses_v_.size()};
  const std::uint64_t column_bytes[5] = {
      arena_v_.size(), offsets_v_.size() * sizeof(std::uint64_t),
      sites_v_.size() * sizeof(chem::ModSite),
      site_offsets_v_.size() * sizeof(std::uint64_t),
      masses_v_.size() * sizeof(Mass)};
  const void* const column_data[5] = {arena_v_.data(), offsets_v_.data(),
                                      sites_v_.data(), site_offsets_v_.data(),
                                      masses_v_.data()};
  std::uint64_t pc = 0;
  std::uint32_t crc = 0;
  bin::crc32_padded(counts, sizeof(counts), pc, crc);
  for (std::size_t column = 0; column < 5; ++column) {
    bin::crc32_padded(column_data[column], column_bytes[column], pc, crc);
  }
  bin::write_raw_section_frame(out, cursor, sz::kSecColumns, pc, crc);
  std::uint64_t wc = 0;
  for (const std::uint64_t count : counts) bin::write_pod(out, count);
  wc += sizeof(counts);
  for (std::size_t column = 0; column < 5; ++column) {
    bin::write_padded(out, column_data[column], column_bytes[column], wc);
  }
  LBE_CHECK(wc == pc, "peptide store payload size drift");
  cursor += pc;
}

PeptideStore PeptideStore::load(std::istream& in,
                                const chem::ModificationSet* mods) {
  std::uint64_t cursor = 0;
  return load(in, mods, cursor);
}

PeptideStore PeptideStore::load(std::istream& in,
                                const chem::ModificationSet* mods,
                                std::uint64_t& cursor) {
  namespace sz = serialize;
  sz::read_header(in, sz::Kind::kPeptideStore);
  cursor += sz::kHeaderBytes;
  const std::string payload =
      bin::read_raw_section(in, cursor, sz::kSecColumns);

  bin::ByteReader reader(std::as_bytes(std::span(payload)));
  const ColumnViews v = parse_columns(reader);
  sz::require(reader.remaining() == 0, "peptide store trailing bytes");
  validate_columns(v);

  PeptideStore store(mods);
  store.arena_.assign(v.arena);
  store.offsets_ = copy_array(v.offsets);
  store.sites_ = copy_array(v.sites);
  store.site_offsets_ = copy_array(v.site_offsets);
  store.masses_ = copy_array(v.masses);
  store.rebind();
  return store;
}

PeptideStore PeptideStore::bind_mapped(
    bin::ByteReader& reader, const chem::ModificationSet* mods,
    std::shared_ptr<const bin::MmapFile> keepalive) {
  namespace sz = serialize;
  serialize::read_header_mapped(reader, sz::Kind::kPeptideStore);
  bin::ByteReader payload(bin::read_raw_section(reader, sz::kSecColumns),
                          0);
  // Re-seat the payload reader at the payload's *file* offset phase: the
  // payload starts 8-aligned in the file, so phase 0 is correct.
  const ColumnViews v = parse_columns(payload);
  sz::require(payload.remaining() == 0, "peptide store trailing bytes");
  validate_columns(v);

  PeptideStore store(mods);
  store.keepalive_ = std::move(keepalive);
  store.arena_v_ = v.arena;
  store.offsets_v_ = v.offsets;
  store.sites_v_ = v.sites;
  store.site_offsets_v_ = v.site_offsets;
  store.masses_v_ = v.masses;
  return store;
}

std::vector<LocalPeptideId> PeptideStore::ids_by_mass() const {
  std::vector<LocalPeptideId> ids(size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<LocalPeptideId>(i);
  }
  std::sort(ids.begin(), ids.end(), [this](LocalPeptideId a, LocalPeptideId b) {
    if (masses_v_[a] != masses_v_[b]) return masses_v_[a] < masses_v_[b];
    return a < b;  // stable tie-break keeps runs deterministic
  });
  return ids;
}

}  // namespace lbe::index
