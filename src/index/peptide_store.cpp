#include "index/peptide_store.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/binary_io.hpp"
#include "common/error.hpp"
#include "index/serialize.hpp"

namespace lbe::index {

LocalPeptideId PeptideStore::add(const chem::Peptide& peptide,
                                 const chem::ModificationSet& mods) {
  LBE_CHECK(size() < kInvalidPeptideId, "peptide store full");
  arena_.append(peptide.sequence());
  offsets_.push_back(arena_.size());
  for (const auto& site : peptide.sites()) sites_.push_back(site);
  site_offsets_.push_back(sites_.size());
  masses_.push_back(peptide.mass(mods));
  if (mods_ == nullptr) mods_ = &mods;
  return static_cast<LocalPeptideId>(size() - 1);
}

void PeptideStore::reserve(std::size_t n, std::size_t avg_len) {
  arena_.reserve(n * avg_len);
  offsets_.reserve(n + 1);
  site_offsets_.reserve(n + 1);
  masses_.reserve(n);
}

PeptideView PeptideStore::view(LocalPeptideId id) const {
  LBE_CHECK(id < size(), "peptide id out of range");
  PeptideView v;
  const std::uint64_t begin = offsets_[id];
  const std::uint64_t end = offsets_[id + 1];
  v.sequence = std::string_view(arena_).substr(begin, end - begin);
  const std::uint64_t site_begin = site_offsets_[id];
  const std::uint64_t site_end = site_offsets_[id + 1];
  v.sites = sites_.data() + site_begin;
  v.site_count = static_cast<std::uint32_t>(site_end - site_begin);
  v.mass = masses_[id];
  return v;
}

chem::Peptide PeptideStore::materialize(LocalPeptideId id) const {
  const PeptideView v = view(id);
  LBE_CHECK(mods_ != nullptr, "store has no modification set");
  std::vector<chem::ModSite> sites(v.sites, v.sites + v.site_count);
  return chem::Peptide(std::string(v.sequence), std::move(sites), *mods_);
}

std::uint64_t PeptideStore::memory_bytes() const noexcept {
  return arena_.capacity() +
         offsets_.capacity() * sizeof(std::uint64_t) +
         sites_.capacity() * sizeof(chem::ModSite) +
         site_offsets_.capacity() * sizeof(std::uint64_t) +
         masses_.capacity() * sizeof(Mass);
}

void PeptideStore::save(std::ostream& out) const {
  namespace sz = serialize;
  sz::write_header(out, sz::Kind::kPeptideStore);
  std::ostringstream payload;
  bin::write_string(payload, arena_);
  bin::write_vector(payload, offsets_);
  bin::write_vector(payload, sites_);
  bin::write_vector(payload, site_offsets_);
  bin::write_vector(payload, masses_);
  bin::write_section(out, sz::kSecColumns, payload.str());
}

PeptideStore PeptideStore::load(std::istream& in,
                                const chem::ModificationSet* mods) {
  namespace sz = serialize;
  sz::read_header(in, sz::Kind::kPeptideStore);
  std::istringstream payload(bin::read_section(in, sz::kSecColumns));

  PeptideStore store(mods);
  store.arena_ = bin::read_string(payload);
  store.offsets_ = bin::read_vector<std::uint64_t>(payload);
  store.sites_ = bin::read_vector<chem::ModSite>(payload);
  store.site_offsets_ = bin::read_vector<std::uint64_t>(payload);
  store.masses_ = bin::read_vector<Mass>(payload);
  // Structural validation: CSR invariants must hold or lookups would read
  // out of bounds later. The CRC catches bit rot; these catch truncated or
  // hand-assembled payloads.
  sz::require(!store.offsets_.empty() && store.offsets_.front() == 0 &&
                  store.offsets_.back() == store.arena_.size(),
              "peptide store sequence offsets");
  sz::require(store.site_offsets_.size() == store.offsets_.size() &&
                  store.site_offsets_.front() == 0 &&
                  store.site_offsets_.back() == store.sites_.size(),
              "peptide store site offsets");
  sz::require(store.masses_.size() == store.offsets_.size() - 1,
              "peptide store mass column");
  for (std::size_t i = 1; i < store.offsets_.size(); ++i) {
    sz::require(store.offsets_[i] >= store.offsets_[i - 1] &&
                    store.site_offsets_[i] >= store.site_offsets_[i - 1],
                "peptide store non-monotone offsets");
  }
  return store;
}

std::vector<LocalPeptideId> PeptideStore::ids_by_mass() const {
  std::vector<LocalPeptideId> ids(size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<LocalPeptideId>(i);
  }
  std::sort(ids.begin(), ids.end(), [this](LocalPeptideId a, LocalPeptideId b) {
    if (masses_[a] != masses_[b]) return masses_[a] < masses_[b];
    return a < b;  // stable tie-break keeps runs deterministic
  });
  return ids;
}

}  // namespace lbe::index
