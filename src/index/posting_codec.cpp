#include "index/posting_codec.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>
#include <string>

#include "common/error.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define LBE_CODEC_X86 1
#else
#define LBE_CODEC_X86 0
#endif

namespace lbe::index::codec {

namespace {

constexpr std::uint32_t kLanes = 8;

std::uint32_t block_rows(std::uint32_t n) noexcept {
  return (n + kLanes - 1) / kLanes;
}

std::uint64_t packed_block_bytes(std::uint32_t n, std::uint32_t width) {
  // One 32-byte stripe per 32 packed bits of the longest lane.
  const std::uint64_t lane_bits =
      static_cast<std::uint64_t>(block_rows(n)) * width;
  return 32 * ((lane_bits + 31) / 32);
}

std::uint32_t width_mask(std::uint32_t width) noexcept {
  return width >= 32 ? 0xFFFFFFFFu : ((1u << width) - 1u);
}

std::uint32_t load_u32(const std::byte* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// ---- decode kernels --------------------------------------------------------
//
// All kernels decode rows [row_first, row_last) of a packed block's
// canonical stripe layout (see the header), writing (row_last - row_first)
// * 8 values at `out` — the caller aims `out` at the row_first position of
// the block's reserved 128-value output region, so tail rows of a short
// final block land inside it, never past it. Row-ranged decode is what
// keeps short bin spans cheap: a span touching 20 postings unpacks 3 rows,
// not a whole block. A width-0 block is pure base replication and touches
// no stream bytes.

void unpack_block_scalar(const BlockMeta& meta, const std::byte* p,
                         std::uint32_t row_first, std::uint32_t row_last,
                         std::uint32_t* out) {
  const std::uint32_t width = meta.width;
  const std::uint32_t base = meta.base;
  if (width == 0) {
    std::fill_n(out, static_cast<std::size_t>(row_last - row_first) * kLanes,
                base);
    return;
  }
  const std::uint32_t mask = width_mask(width);
  // Lane-outer with a 64-bit bit buffer: each lane is an independent
  // little-endian bit stream (one u32 word per stripe), so a lane refills
  // its buffer once per 32 bits consumed — about width/32 loads per value
  // instead of the naive one-or-two.
  const std::uint32_t start_bit = row_first * width;
  for (std::uint32_t lane = 0; lane < kLanes; ++lane) {
    std::uint32_t word = start_bit >> 5;
    std::uint64_t buf = load_u32(p + 4 * (word * kLanes + lane));
    std::uint32_t have = 32 - (start_bit & 31);
    buf >>= start_bit & 31;
    ++word;
    for (std::uint32_t r = row_first; r < row_last; ++r) {
      if (have < width) {
        buf |= static_cast<std::uint64_t>(
                   load_u32(p + 4 * (word * kLanes + lane)))
               << have;
        have += 32;
        ++word;
      }
      out[(r - row_first) * kLanes + lane] =
          base + (static_cast<std::uint32_t>(buf) & mask);
      buf >>= width;
      have -= width;
    }
  }
}

#if LBE_CODEC_X86

__attribute__((target("sse4.1"))) void unpack_block_sse(
    const BlockMeta& meta, const std::byte* p, std::uint32_t row_first,
    std::uint32_t row_last, std::uint32_t* out) {
  const std::uint32_t width = meta.width;
  if (width == 0) {
    std::fill_n(out, static_cast<std::size_t>(row_last - row_first) * kLanes,
                meta.base);
    return;
  }
  const __m128i mask = _mm_set1_epi32(static_cast<int>(width_mask(width)));
  const __m128i base = _mm_set1_epi32(static_cast<int>(meta.base));
  // One stripe = lanes 0-3 in the low 16 bytes, lanes 4-7 in the high 16;
  // both halves share the exact shift schedule of the AVX2 kernel. Entry
  // mid-stream: row_first's packed bits start at bit (row_first * width)
  // of every lane, i.e. stripe (bitpos / 32) at in-word offset bitpos % 32.
  const std::uint32_t bitpos = row_first * width;
  p += 32 * (bitpos >> 5);
  __m128i acc0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  __m128i acc1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
  p += 32;
  std::uint32_t bit = bitpos & 31;
  for (std::uint32_t r = row_first; r < row_last; ++r) {
    __m128i v0, v1;
    if (bit + width <= 32) {
      const __m128i count = _mm_cvtsi32_si128(static_cast<int>(bit));
      v0 = _mm_srl_epi32(acc0, count);
      v1 = _mm_srl_epi32(acc1, count);
      bit += width;
      if (bit == 32 && r + 1 < row_last) {
        acc0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
        acc1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
        p += 32;
        bit = 0;
      }
    } else {
      const __m128i lo_count = _mm_cvtsi32_si128(static_cast<int>(bit));
      const __m128i hi_count = _mm_cvtsi32_si128(static_cast<int>(32 - bit));
      const __m128i lo0 = _mm_srl_epi32(acc0, lo_count);
      const __m128i lo1 = _mm_srl_epi32(acc1, lo_count);
      acc0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
      acc1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
      p += 32;
      v0 = _mm_or_si128(lo0, _mm_sll_epi32(acc0, hi_count));
      v1 = _mm_or_si128(lo1, _mm_sll_epi32(acc1, hi_count));
      bit = bit + width - 32;
    }
    v0 = _mm_add_epi32(_mm_and_si128(v0, mask), base);
    v1 = _mm_add_epi32(_mm_and_si128(v1, mask), base);
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(out + (r - row_first) * kLanes), v0);
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(out + (r - row_first) * kLanes + 4), v1);
  }
}

__attribute__((target("avx2"))) void unpack_block_avx2(
    const BlockMeta& meta, const std::byte* p, std::uint32_t row_first,
    std::uint32_t row_last, std::uint32_t* out) {
  const std::uint32_t width = meta.width;
  if (width == 0) {
    std::fill_n(out, static_cast<std::size_t>(row_last - row_first) * kLanes,
                meta.base);
    return;
  }
  const __m256i mask = _mm256_set1_epi32(static_cast<int>(width_mask(width)));
  const __m256i base = _mm256_set1_epi32(static_cast<int>(meta.base));
  const std::uint32_t bitpos = row_first * width;
  p += 32 * (bitpos >> 5);
  __m256i acc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  p += 32;
  std::uint32_t bit = bitpos & 31;
  for (std::uint32_t r = row_first; r < row_last; ++r) {
    __m256i v;
    if (bit + width <= 32) {
      v = _mm256_srl_epi32(acc, _mm_cvtsi32_si128(static_cast<int>(bit)));
      bit += width;
      if (bit == 32 && r + 1 < row_last) {
        acc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
        p += 32;
        bit = 0;
      }
    } else {
      const __m256i lo =
          _mm256_srl_epi32(acc, _mm_cvtsi32_si128(static_cast<int>(bit)));
      acc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
      p += 32;
      const __m256i hi = _mm256_sll_epi32(
          acc, _mm_cvtsi32_si128(static_cast<int>(32 - bit)));
      v = _mm256_or_si256(lo, hi);
      bit = bit + width - 32;
    }
    v = _mm256_add_epi32(_mm256_and_si256(v, mask), base);
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + (r - row_first) * kLanes), v);
  }
}

#endif  // LBE_CODEC_X86

using UnpackFn = void (*)(const BlockMeta&, const std::byte*, std::uint32_t,
                          std::uint32_t, std::uint32_t*);

UnpackFn kernel_for(SimdLevel level) noexcept {
#if LBE_CODEC_X86
  if (level == SimdLevel::kAvx2) return &unpack_block_avx2;
  if (level == SimdLevel::kSse) return &unpack_block_sse;
#endif
  (void)level;
  return &unpack_block_scalar;
}

SimdLevel clamp_to_cpu(SimdLevel level) noexcept {
  if (level == SimdLevel::kAuto) {
    if (cpu_supports(SimdLevel::kAvx2)) return SimdLevel::kAvx2;
    if (cpu_supports(SimdLevel::kSse)) return SimdLevel::kSse;
    return SimdLevel::kScalar;
  }
  // A requested ISA the CPU lacks degrades to the widest one it has —
  // `--simd avx2` on an SSE-only machine must not fault mid-query.
  if (level == SimdLevel::kAvx2 && !cpu_supports(SimdLevel::kAvx2)) {
    return clamp_to_cpu(SimdLevel::kAuto);
  }
  if (level == SimdLevel::kSse && !cpu_supports(SimdLevel::kSse)) {
    return SimdLevel::kScalar;
  }
  return level;
}

struct KernelState {
  std::atomic<int> level;
  std::atomic<UnpackFn> unpack;
  KernelState() noexcept {
    const SimdLevel resolved = clamp_to_cpu(SimdLevel::kAuto);
    level.store(static_cast<int>(resolved), std::memory_order_relaxed);
    unpack.store(kernel_for(resolved), std::memory_order_relaxed);
  }
};

KernelState& state() noexcept {
  static KernelState s;
  return s;
}

}  // namespace

std::uint64_t block_bytes(const BlockMeta& meta, std::uint32_t n) noexcept {
  if (meta.tag == kTagRaw) return static_cast<std::uint64_t>(n) * 4;
  return packed_block_bytes(n, meta.width);
}

void encode(std::span<const std::uint32_t> values,
            std::vector<BlockMeta>& blocks, std::vector<std::byte>& bytes) {
  blocks.clear();
  bytes.clear();
  for (std::size_t begin = 0; begin < values.size();
       begin += kBlockValues) {
    const std::uint32_t n = static_cast<std::uint32_t>(
        std::min<std::size_t>(kBlockValues, values.size() - begin));
    const std::uint32_t* v = values.data() + begin;
    const auto [min_it, max_it] = std::minmax_element(v, v + n);
    const std::uint32_t base = *min_it;
    const std::uint32_t width =
        static_cast<std::uint32_t>(std::bit_width(*max_it - base));

    BlockMeta meta;
    meta.offset = bytes.size();
    const std::uint64_t raw_size = static_cast<std::uint64_t>(n) * 4;
    if (packed_block_bytes(n, width) >= raw_size) {
      // Incompressible (or too short to amortize a stripe): verbatim u32.
      meta.tag = kTagRaw;
      blocks.push_back(meta);
      const std::size_t at = bytes.size();
      bytes.resize(at + raw_size);
      std::memcpy(bytes.data() + at, v, raw_size);
      continue;
    }
    meta.base = base;
    meta.width = static_cast<std::uint8_t>(width);
    meta.tag = kTagPacked;
    blocks.push_back(meta);
    const std::size_t at = bytes.size();
    bytes.resize(at + packed_block_bytes(n, width), std::byte{0});
    if (width == 0) continue;
    auto* words = reinterpret_cast<unsigned char*>(bytes.data() + at);
    auto or_word = [&](std::uint32_t word_index, std::uint32_t value) {
      std::uint32_t w;
      std::memcpy(&w, words + 4 * word_index, 4);
      w |= value;
      std::memcpy(words + 4 * word_index, &w, 4);
    };
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t off = v[i] - base;
      const std::uint32_t lane = i % kLanes;
      const std::uint32_t bitpos = (i / kLanes) * width;
      const std::uint32_t word = bitpos >> 5;
      const std::uint32_t shift = bitpos & 31;
      or_word(word * kLanes + lane, off << shift);
      if (shift + width > 32) {
        or_word((word + 1) * kLanes + lane, off >> (32 - shift));
      }
    }
  }
}

void decode_blocks(std::span<const BlockMeta> blocks,
                   std::span<const std::byte> bytes,
                   std::uint64_t total_count, std::size_t block_first,
                   std::size_t block_count, std::uint32_t* out) {
  const UnpackFn unpack = state().unpack.load(std::memory_order_relaxed);
  for (std::size_t b = block_first; b < block_first + block_count; ++b) {
    const BlockMeta& meta = blocks[b];
    const std::uint64_t value_first =
        static_cast<std::uint64_t>(b) * kBlockValues;
    const auto n =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(
            kBlockValues, total_count - value_first));
    std::uint32_t* slot = out + (b - block_first) * kBlockValues;
    const std::byte* p = bytes.data() + meta.offset;
    if (meta.tag == kTagRaw) {
      std::memcpy(slot, p, static_cast<std::size_t>(n) * 4);
    } else {
      unpack(meta, p, 0, block_rows(n), slot);
    }
  }
}

void decode_range(std::span<const BlockMeta> blocks,
                  std::span<const std::byte> bytes, std::uint64_t total_count,
                  std::uint64_t first, std::uint64_t last,
                  std::uint32_t* out) {
  if (first >= last) return;
  const UnpackFn unpack = state().unpack.load(std::memory_order_relaxed);
  const std::size_t block_first = first / kBlockValues;
  const std::size_t block_last =
      static_cast<std::size_t>((last + kBlockValues - 1) / kBlockValues);
  for (std::size_t b = block_first; b < block_last; ++b) {
    const BlockMeta& meta = blocks[b];
    const std::uint64_t value_first =
        static_cast<std::uint64_t>(b) * kBlockValues;
    const auto n = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kBlockValues, total_count - value_first));
    // Rows covering the intersection of [first, last) with this block.
    const auto lo = static_cast<std::uint32_t>(
        b == block_first ? first - value_first : 0);
    const auto hi =
        static_cast<std::uint32_t>(b + 1 == block_last ? last - value_first
                                                       : n);
    const std::uint32_t row_first = lo / kLanes;
    const std::uint32_t row_last = (hi + kLanes - 1) / kLanes;
    std::uint32_t* slot = out + (b - block_first) * kBlockValues;
    const std::byte* p = bytes.data() + meta.offset;
    if (meta.tag == kTagRaw) {
      const std::uint32_t from = row_first * kLanes;
      const std::uint32_t to = std::min<std::uint32_t>(row_last * kLanes, n);
      std::memcpy(slot + from, p + static_cast<std::size_t>(from) * 4,
                  static_cast<std::size_t>(to - from) * 4);
    } else {
      unpack(meta, p, row_first, row_last, slot + row_first * kLanes);
    }
  }
}

void validate_blocks(std::span<const BlockMeta> blocks,
                     std::uint64_t total_count, std::uint64_t stream_bytes) {
  const std::uint64_t expected_blocks =
      (total_count + kBlockValues - 1) / kBlockValues;
  if (blocks.size() != expected_blocks) {
    throw IoError("corrupt index stream: posting block count mismatch");
  }
  std::uint64_t cursor = 0;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const BlockMeta& meta = blocks[b];
    const auto n = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        kBlockValues, total_count - static_cast<std::uint64_t>(b) *
                                        kBlockValues));
    if (meta.tag != kTagPacked && meta.tag != kTagRaw) {
      throw IoError("corrupt index stream: unknown posting block encoding");
    }
    if (meta.width > 32 || meta.reserved != 0 ||
        (meta.tag == kTagRaw && (meta.width != 0 || meta.base != 0))) {
      throw IoError("corrupt index stream: malformed posting block header");
    }
    if (meta.offset != cursor) {
      throw IoError("corrupt index stream: posting block extent out of "
                    "order");
    }
    cursor += block_bytes(meta, n);
  }
  if (cursor != stream_bytes) {
    throw IoError("corrupt index stream: posting blocks do not tile the "
                  "packed stream");
  }
}

// ---- kernel selection ------------------------------------------------------

bool cpu_supports(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kAvx2:
#if LBE_CODEC_X86
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case SimdLevel::kSse:
#if LBE_CODEC_X86
      return __builtin_cpu_supports("sse4.1") != 0;
#else
      return false;
#endif
    case SimdLevel::kAuto:
    case SimdLevel::kScalar:
      return true;
  }
  return false;
}

void set_simd_level(SimdLevel level) noexcept {
  const SimdLevel resolved = clamp_to_cpu(level);
  KernelState& s = state();
  s.level.store(static_cast<int>(resolved), std::memory_order_relaxed);
  s.unpack.store(kernel_for(resolved), std::memory_order_relaxed);
}

SimdLevel resolved_simd_level() noexcept {
  return static_cast<SimdLevel>(state().level.load(std::memory_order_relaxed));
}

const char* simd_level_name(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kAuto:
      return "auto";
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse:
      return "sse";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "?";
}

bool parse_simd_level(std::string_view text, SimdLevel& out) noexcept {
  if (text == "auto") {
    out = SimdLevel::kAuto;
  } else if (text == "scalar") {
    out = SimdLevel::kScalar;
  } else if (text == "sse") {
    out = SimdLevel::kSse;
  } else if (text == "avx2") {
    out = SimdLevel::kAvx2;
  } else {
    return false;
  }
  return true;
}

}  // namespace lbe::index::codec
