// Deterministic filtration work counters — the machine-independent load
// measure used alongside wall time by the perf layer. Kept in its own tiny
// header so perf/metrics.hpp can consume per-rank work without dragging in
// the whole index/theospec header tree.
#pragma once

#include <cstdint>

namespace lbe::index {

/// Counters accumulate across queries; the batched span walk accounts
/// identically to a per-peak walk (a bin covered by k peaks still counts k
/// visits and k× its postings), so values are comparable across engines.
struct QueryWork {
  std::uint64_t peaks_processed = 0;
  std::uint64_t bins_visited = 0;
  std::uint64_t postings_touched = 0;
  std::uint64_t candidates = 0;
  // Block-max pruning observability: spans/blocks the batched walk visited
  // vs skipped via v5 bounds, and candidates the engine actually ranked.
  // Pure telemetry — cost_units() deliberately excludes them so the Eq. 1
  // load model keeps its meaning across pruning on/off.
  std::uint64_t spans_walked = 0;
  std::uint64_t spans_pruned = 0;
  std::uint64_t blocks_walked = 0;
  std::uint64_t blocks_pruned = 0;
  std::uint64_t candidates_scored = 0;

  QueryWork& operator+=(const QueryWork& other) {
    peaks_processed += other.peaks_processed;
    bins_visited += other.bins_visited;
    postings_touched += other.postings_touched;
    candidates += other.candidates;
    spans_walked += other.spans_walked;
    spans_pruned += other.spans_pruned;
    blocks_walked += other.blocks_walked;
    blocks_pruned += other.blocks_pruned;
    candidates_scored += other.candidates_scored;
    return *this;
  }

  /// Scalar cost proxy: dominated by postings traffic, like the real engine.
  double cost_units() const {
    return static_cast<double>(postings_touched) +
           0.25 * static_cast<double>(bins_visited) +
           8.0 * static_cast<double>(candidates);
  }
};

}  // namespace lbe::index
