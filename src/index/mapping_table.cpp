#include "index/mapping_table.hpp"

#include <sstream>

#include "common/binary_io.hpp"
#include "common/error.hpp"
#include "index/serialize.hpp"

namespace lbe::index {

MappingTable::MappingTable(
    const std::vector<std::vector<GlobalPeptideId>>& per_rank) {
  std::size_t total = 0;
  for (const auto& rank_ids : per_rank) total += rank_ids.size();

  flat_.reserve(total);
  offsets_.reserve(per_rank.size() + 1);
  inv_rank_.assign(total, 0xFFFFFFFFu);
  inv_local_.assign(total, kInvalidPeptideId);

  for (std::size_t rank = 0; rank < per_rank.size(); ++rank) {
    for (std::size_t local = 0; local < per_rank[rank].size(); ++local) {
      const GlobalPeptideId global = per_rank[rank][local];
      LBE_CHECK(global < total, "global peptide id out of range");
      LBE_CHECK(inv_rank_[global] == 0xFFFFFFFFu,
                "global peptide id assigned to two ranks");
      inv_rank_[global] = static_cast<std::uint32_t>(rank);
      inv_local_[global] = static_cast<LocalPeptideId>(local);
      flat_.push_back(global);
    }
    offsets_.push_back(flat_.size());
  }
  // Every global id must have been claimed exactly once.
  for (std::size_t g = 0; g < total; ++g) {
    LBE_CHECK(inv_rank_[g] != 0xFFFFFFFFu, "unassigned global peptide id");
  }
}

std::size_t MappingTable::rank_count(RankId rank) const {
  LBE_CHECK(rank >= 0 && rank < num_ranks(), "rank out of range");
  const auto r = static_cast<std::size_t>(rank);
  return offsets_[r + 1] - offsets_[r];
}

GlobalPeptideId MappingTable::to_global(RankId rank,
                                        LocalPeptideId local) const {
  LBE_CHECK(rank >= 0 && rank < num_ranks(), "rank out of range");
  const auto r = static_cast<std::size_t>(rank);
  LBE_CHECK(local < offsets_[r + 1] - offsets_[r], "local id out of range");
  return flat_[offsets_[r] + local];
}

RankId MappingTable::rank_of(GlobalPeptideId global) const {
  LBE_CHECK(global < flat_.size(), "global id out of range");
  return static_cast<RankId>(inv_rank_[global]);
}

LocalPeptideId MappingTable::local_of(GlobalPeptideId global) const {
  LBE_CHECK(global < flat_.size(), "global id out of range");
  return inv_local_[global];
}

void MappingTable::save(std::ostream& out) const {
  namespace sz = serialize;
  sz::write_header(out, sz::Kind::kMappingTable);
  std::ostringstream payload;
  bin::write_vector(payload, offsets_);
  bin::write_vector(payload, flat_);
  bin::write_section(out, sz::kSecMapping, payload.str());
}

MappingTable MappingTable::load(std::istream& in) {
  namespace sz = serialize;
  sz::read_header(in, sz::Kind::kMappingTable);
  std::istringstream payload(bin::read_section(in, sz::kSecMapping));

  MappingTable table;
  table.offsets_ = bin::read_vector<std::uint64_t>(payload);
  table.flat_ = bin::read_vector<GlobalPeptideId>(payload);

  const std::size_t total = table.flat_.size();
  sz::require(!table.offsets_.empty() && table.offsets_.front() == 0 &&
                  table.offsets_.back() == total,
              "mapping offsets do not cover the flat array");
  for (std::size_t r = 1; r < table.offsets_.size(); ++r) {
    sz::require(table.offsets_[r] >= table.offsets_[r - 1],
                "non-monotone mapping offsets");
  }

  // Rebuild the inverse arrays, re-proving the bijection invariant the
  // validating constructor enforces: every global id claimed exactly once.
  table.inv_rank_.assign(total, 0xFFFFFFFFu);
  table.inv_local_.assign(total, kInvalidPeptideId);
  for (std::size_t rank = 0; rank + 1 < table.offsets_.size(); ++rank) {
    for (std::uint64_t i = table.offsets_[rank]; i < table.offsets_[rank + 1];
         ++i) {
      const GlobalPeptideId global = table.flat_[i];
      sz::require(global < total, "mapping global id out of range");
      sz::require(table.inv_rank_[global] == 0xFFFFFFFFu,
                  "mapping global id assigned to two ranks");
      table.inv_rank_[global] = static_cast<std::uint32_t>(rank);
      table.inv_local_[global] =
          static_cast<LocalPeptideId>(i - table.offsets_[rank]);
    }
  }
  return table;
}

std::uint64_t MappingTable::memory_bytes() const noexcept {
  return offsets_.capacity() * sizeof(std::uint64_t) +
         flat_.capacity() * sizeof(GlobalPeptideId) +
         inv_rank_.capacity() * sizeof(std::uint32_t) +
         inv_local_.capacity() * sizeof(LocalPeptideId);
}

}  // namespace lbe::index
