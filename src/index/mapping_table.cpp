#include "index/mapping_table.hpp"

#include "common/error.hpp"

namespace lbe::index {

MappingTable::MappingTable(
    const std::vector<std::vector<GlobalPeptideId>>& per_rank) {
  std::size_t total = 0;
  for (const auto& rank_ids : per_rank) total += rank_ids.size();

  flat_.reserve(total);
  offsets_.reserve(per_rank.size() + 1);
  inv_rank_.assign(total, 0xFFFFFFFFu);
  inv_local_.assign(total, kInvalidPeptideId);

  for (std::size_t rank = 0; rank < per_rank.size(); ++rank) {
    for (std::size_t local = 0; local < per_rank[rank].size(); ++local) {
      const GlobalPeptideId global = per_rank[rank][local];
      LBE_CHECK(global < total, "global peptide id out of range");
      LBE_CHECK(inv_rank_[global] == 0xFFFFFFFFu,
                "global peptide id assigned to two ranks");
      inv_rank_[global] = static_cast<std::uint32_t>(rank);
      inv_local_[global] = static_cast<LocalPeptideId>(local);
      flat_.push_back(global);
    }
    offsets_.push_back(flat_.size());
  }
  // Every global id must have been claimed exactly once.
  for (std::size_t g = 0; g < total; ++g) {
    LBE_CHECK(inv_rank_[g] != 0xFFFFFFFFu, "unassigned global peptide id");
  }
}

std::size_t MappingTable::rank_count(RankId rank) const {
  LBE_CHECK(rank >= 0 && rank < num_ranks(), "rank out of range");
  const auto r = static_cast<std::size_t>(rank);
  return offsets_[r + 1] - offsets_[r];
}

GlobalPeptideId MappingTable::to_global(RankId rank,
                                        LocalPeptideId local) const {
  LBE_CHECK(rank >= 0 && rank < num_ranks(), "rank out of range");
  const auto r = static_cast<std::size_t>(rank);
  LBE_CHECK(local < offsets_[r + 1] - offsets_[r], "local id out of range");
  return flat_[offsets_[r] + local];
}

RankId MappingTable::rank_of(GlobalPeptideId global) const {
  LBE_CHECK(global < flat_.size(), "global id out of range");
  return static_cast<RankId>(inv_rank_[global]);
}

LocalPeptideId MappingTable::local_of(GlobalPeptideId global) const {
  LBE_CHECK(global < flat_.size(), "global id out of range");
  return inv_local_[global];
}

std::uint64_t MappingTable::memory_bytes() const noexcept {
  return offsets_.capacity() * sizeof(std::uint64_t) +
         flat_.capacity() * sizeof(GlobalPeptideId) +
         inv_rank_.capacity() * sizeof(std::uint32_t) +
         inv_local_.capacity() * sizeof(LocalPeptideId);
}

}  // namespace lbe::index
