// Compact columnar storage for the peptide entries behind one index.
//
// Sequences live in one arena string with a CSR offset array; modification
// sites use a second CSR. Precursor masses are precomputed once. This is
// the structure whose bytes Fig. 5 accounts: per entry it costs
// len(seq) + 8 (offsets amortized) + 8 (mass) + 4*sites bytes, far below a
// per-peptide std::string.
//
// Every column is accessed through a non-owning view (`std::span` /
// `std::string_view`) that binds to one of two backings: the store's own
// containers (the cold path — `add` builds them, stream `load` fills them)
// or a memory-mapped format-v3 index file (the warm path, `bind_mapped`),
// in which case nothing is copied and the kernel pages columns in on first
// touch. The mapping is kept alive by shared ownership.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "chem/modification.hpp"
#include "chem/peptide.hpp"
#include "common/types.hpp"

namespace lbe::bin {
class MmapFile;
class ByteReader;
}  // namespace lbe::bin

namespace lbe::index {

/// Lightweight non-owning view of one stored peptide entry.
struct PeptideView {
  std::string_view sequence;
  const chem::ModSite* sites = nullptr;
  std::uint32_t site_count = 0;
  Mass mass = 0.0;

  bool modified() const noexcept { return site_count > 0; }
};

class PeptideStore {
 public:
  explicit PeptideStore(const chem::ModificationSet* mods = nullptr)
      : mods_(mods) {
    rebind();
  }

  // Copies and moves must re-point the column views: a moved std::string
  // may relocate its bytes (SSO), and a copied container always does. A
  // mapped store's views target the mapping, which both operations share.
  PeptideStore(const PeptideStore& other);
  PeptideStore& operator=(const PeptideStore& other);
  PeptideStore(PeptideStore&& other) noexcept;
  PeptideStore& operator=(PeptideStore&& other) noexcept;

  /// Appends an entry; returns its local id (dense, 0-based). Only valid
  /// on stores backed by their own containers (not mapped ones).
  LocalPeptideId add(const chem::Peptide& peptide,
                     const chem::ModificationSet& mods);

  /// Bulk-reserve for `n` entries of ~`avg_len` residues.
  void reserve(std::size_t n, std::size_t avg_len = 16);

  std::size_t size() const noexcept { return offsets_v_.size() - 1; }
  bool empty() const noexcept { return size() == 0; }

  /// True when the columns are views into a mapped index file.
  bool mapped() const noexcept { return keepalive_ != nullptr; }

  PeptideView view(LocalPeptideId id) const;

  /// Reconstructs a full Peptide value (allocates; for result reporting).
  chem::Peptide materialize(LocalPeptideId id) const;

  Mass mass(LocalPeptideId id) const { return masses_v_[id]; }

  /// Exact heap bytes held by the store (Fig. 5 accounting). A mapped
  /// store owns no column heap — its bytes live in the file cache.
  std::uint64_t memory_bytes() const noexcept;

  /// Ids sorted by ascending precursor mass (for chunking, Fig. 1 scheme).
  std::vector<LocalPeptideId> ids_by_mass() const;

  /// Binary serialization (the paper's disk-resident chunks, §II-B): the
  /// store's columns dump verbatim into one aligned raw section; the
  /// modification set is NOT serialized (pass the same one to load — mod
  /// ids must mean the same thing). The `cursor` overloads serve embedding
  /// inside another component file (format-v3 alignment is file-relative).
  void save(std::ostream& out) const;
  void save(std::ostream& out, std::uint64_t& cursor) const;
  static PeptideStore load(std::istream& in, const chem::ModificationSet* mods);
  static PeptideStore load(std::istream& in, const chem::ModificationSet* mods,
                           std::uint64_t& cursor);

  /// Zero-copy load: binds the columns straight into the mapped file
  /// `reader` walks (positioned at this store's nested header). The
  /// columns section is CRC-validated here — mapping a store *is* its
  /// first touch. `keepalive` must own the bytes behind `reader`.
  static PeptideStore bind_mapped(
      bin::ByteReader& reader, const chem::ModificationSet* mods,
      std::shared_ptr<const bin::MmapFile> keepalive);

 private:
  /// Points the views at the store's own containers.
  void rebind() noexcept;
  void adopt_views_or_rebind(const PeptideStore& other) noexcept;
  /// Restores the valid-empty-store state (used on moved-from sources).
  void reset_to_empty() noexcept;

  const chem::ModificationSet* mods_ = nullptr;

  // The access path: every reader goes through these views.
  std::string_view arena_v_;
  std::span<const std::uint64_t> offsets_v_;
  std::span<const chem::ModSite> sites_v_;
  std::span<const std::uint64_t> site_offsets_v_;
  std::span<const Mass> masses_v_;

  // Owned backing (cold path); empty when mapped.
  std::string arena_;
  std::vector<std::uint64_t> offsets_{0};
  std::vector<chem::ModSite> sites_;
  std::vector<std::uint64_t> site_offsets_{0};
  std::vector<Mass> masses_;

  std::shared_ptr<const bin::MmapFile> keepalive_;
};

}  // namespace lbe::index
