// Compact columnar storage for the peptide entries behind one index.
//
// Sequences live in one arena string with a CSR offset array; modification
// sites use a second CSR. Precursor masses are precomputed once. This is
// the structure whose bytes Fig. 5 accounts: per entry it costs
// len(seq) + 8 (offsets amortized) + 8 (mass) + 4*sites bytes, far below a
// per-peptide std::string.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "chem/modification.hpp"
#include "chem/peptide.hpp"
#include "common/types.hpp"

namespace lbe::index {

/// Lightweight non-owning view of one stored peptide entry.
struct PeptideView {
  std::string_view sequence;
  const chem::ModSite* sites = nullptr;
  std::uint32_t site_count = 0;
  Mass mass = 0.0;

  bool modified() const noexcept { return site_count > 0; }
};

class PeptideStore {
 public:
  explicit PeptideStore(const chem::ModificationSet* mods = nullptr)
      : mods_(mods) {}

  /// Appends an entry; returns its local id (dense, 0-based).
  LocalPeptideId add(const chem::Peptide& peptide,
                     const chem::ModificationSet& mods);

  /// Bulk-reserve for `n` entries of ~`avg_len` residues.
  void reserve(std::size_t n, std::size_t avg_len = 16);

  std::size_t size() const noexcept { return offsets_.size() - 1; }
  bool empty() const noexcept { return size() == 0; }

  PeptideView view(LocalPeptideId id) const;

  /// Reconstructs a full Peptide value (allocates; for result reporting).
  chem::Peptide materialize(LocalPeptideId id) const;

  Mass mass(LocalPeptideId id) const { return masses_[id]; }

  /// Exact heap bytes held by the store (Fig. 5 accounting).
  std::uint64_t memory_bytes() const noexcept;

  /// Ids sorted by ascending precursor mass (for chunking, Fig. 1 scheme).
  std::vector<LocalPeptideId> ids_by_mass() const;

  /// Binary serialization (the paper's disk-resident chunks, §II-B): the
  /// store's columns dump verbatim; the modification set is NOT serialized
  /// (pass the same one to load — mod ids must mean the same thing).
  void save(std::ostream& out) const;
  static PeptideStore load(std::istream& in, const chem::ModificationSet* mods);

 private:
  const chem::ModificationSet* mods_;
  std::string arena_;
  std::vector<std::uint64_t> offsets_{0};
  std::vector<chem::ModSite> sites_;
  std::vector<std::uint64_t> site_offsets_{0};
  std::vector<Mass> masses_;
};

}  // namespace lbe::index
