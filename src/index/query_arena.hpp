// Per-thread filtration arena.
//
// All mutable per-query state of shared-peak filtration lives here rather
// than inside the index: the epoch-stamped scorecard over store-wide local
// peptide ids, the threshold-crossing list, the coalesced bin-span scratch
// of the batched query walk, and the engine's candidate buffer. Hoisting it
// out of SlmIndex makes `query` genuinely const — one index can serve any
// number of threads as long as each thread brings its own arena — and keeps
// the per-query allocation count at zero once the arena is warm.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "index/binning.hpp"
#include "index/peptide_store.hpp"

namespace lbe::index {

struct Candidate;

/// One maximal run of consecutive bins covered by the same set of query
/// peaks. `multiplicity` peaks cover every bin in [lo, hi); their summed
/// intensity is `intensity`. Because bins in a span are consecutive, their
/// postings are one contiguous slice of the CSR array — the batched query
/// walks that slice once instead of once per covering peak.
struct BinSpan {
  MzBin lo = 0;
  MzBin hi = 0;  ///< exclusive
  std::uint32_t multiplicity = 0;
  float intensity = 0.0f;
};

class QueryArena {
 public:
  /// Interleaved scorecard slot: one cache touch per posting instead of
  /// three parallel arrays (the pre-refactor layout, which the reference
  /// walk below retains for honest before/after comparison). An entry is
  /// live only when its stamp matches the arena epoch, so nothing is
  /// cleared between queries.
  struct Slot {
    std::uint32_t stamp = 0;
    std::uint32_t count = 0;
    float intensity = 0.0f;
    std::uint32_t pad = 0;  ///< 16-byte stride: shift, not imul, to index
  };

  /// Resizes the scorecard for a store of `num_peptides` entries (ids are
  /// store-wide, so one arena serves every chunk of a ChunkedIndex) and
  /// starts a new epoch. Called by the index at the top of each query.
  void begin_query(std::size_t num_peptides) {
    if (slots_.size() != num_peptides) {
      slots_.assign(num_peptides, Slot{});
      ref_stamp_.clear();
      ref_count_.clear();
      ref_intensity_.clear();
      epoch_ = 0;
    }
    if (++epoch_ == 0) {  // 32-bit wrap: restamp and continue
      for (Slot& slot : slots_) slot.stamp = 0;
      std::fill(ref_stamp_.begin(), ref_stamp_.end(), 0);
      epoch_ = 1;
    }
    reached.clear();
  }

  /// Lazily sizes the pre-refactor three-array scorecard (query_reference
  /// only). Call after begin_query.
  void ensure_reference() {
    if (ref_stamp_.size() != slots_.size()) {
      ref_stamp_.assign(slots_.size(), 0);
      ref_count_.assign(slots_.size(), 0);
      ref_intensity_.assign(slots_.size(), 0.0f);
    }
  }

  std::uint32_t epoch() const noexcept { return epoch_; }

  Slot& slot(LocalPeptideId pep) { return slots_[pep]; }
  Slot* slots_data() noexcept { return slots_.data(); }

  // Pre-refactor scorecard accessors (reference walk only).
  bool ref_stamped(LocalPeptideId pep) const {
    return ref_stamp_[pep] == epoch_;
  }
  void ref_stamp(LocalPeptideId pep) {
    ref_stamp_[pep] = epoch_;
    ref_count_[pep] = 0;
    ref_intensity_[pep] = 0.0f;
  }
  std::uint16_t& ref_count(LocalPeptideId pep) { return ref_count_[pep]; }
  float& ref_intensity(LocalPeptideId pep) { return ref_intensity_[pep]; }

  /// Heap bytes currently held (scorecards + scratch capacities).
  std::uint64_t memory_bytes() const noexcept {
    return slots_.capacity() * sizeof(Slot) +
           ref_stamp_.capacity() * sizeof(std::uint32_t) +
           ref_count_.capacity() * sizeof(std::uint16_t) +
           ref_intensity_.capacity() * sizeof(float) +
           reached.capacity() * sizeof(LocalPeptideId) +
           spans.capacity() * sizeof(BinSpan) +
           windows.capacity() * sizeof(Window) +
           decoded.capacity() * sizeof(std::uint32_t) +
           prune_scores.capacity() * sizeof(double);
  }

  /// Peptides that crossed the shared-peak threshold this query.
  std::vector<LocalPeptideId> reached;

  /// Batched-walk scratch: per-peak tolerance windows and the coalesced
  /// spans they sweep into. Rebuilt per query, capacity retained. Windows
  /// are naturally sorted (spectra are m/z-sorted and the tolerance width
  /// is constant), so the sweep is a linear two-pointer merge — no sort.
  struct Window {
    MzBin open = 0;   ///< first covered bin
    MzBin close = 0;  ///< one past the last covered bin
    float intensity = 0.0f;
  };
  std::vector<Window> windows;
  std::vector<BinSpan> spans;

  /// Span-decode scratch for packed (format v4) indexes: the covering
  /// posting blocks of one span, unpacked (index/posting_codec.hpp).
  /// Sized in whole 128-value blocks; grows to the largest span seen and
  /// stays allocated, so steady-state decode allocates nothing.
  std::vector<std::uint32_t> decoded;

  /// Score scratch for ChunkedIndex's block-max pruning floor (the K-th
  /// best filter score among candidates of completed chunks).
  std::vector<double> prune_scores;

  /// Candidate buffer reused by QueryEngine between queries.
  std::vector<Candidate> candidates;

 private:
  std::vector<Slot> slots_;
  // Pre-refactor layout: three parallel arrays, lazily allocated the first
  // time query_reference runs (tests and the micro speedup gate).
  std::vector<std::uint32_t> ref_stamp_;
  std::vector<std::uint16_t> ref_count_;
  std::vector<float> ref_intensity_;
  std::uint32_t epoch_ = 0;
};

}  // namespace lbe::index
