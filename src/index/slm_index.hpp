// SLM-style shared-peak fragment-ion index.
//
// Build: every stored peptide is fragmented (b/y ions), each fragment m/z is
// quantized (see Binning), and a CSR structure maps bin -> postings (local
// peptide ids). Within a bin, postings are ordered by parent precursor mass
// then id — the secondary sort the paper's Fig. 1 describes, which makes
// precursor-window scans over a bin contiguous.
//
// Query: the query's peak tolerance windows are swept into coalesced bin
// spans (each span = a run of consecutive bins covered by the same peaks),
// and every span's contiguous postings slice is walked exactly once,
// bumping the epoch-stamped per-peptide scorecard by the span's peak
// multiplicity. Peptides reaching the shared-peak threshold become
// candidate PSMs (cPSMs). All mutable query state lives in a caller-owned
// QueryArena, so one index serves any number of threads concurrently.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "chem/spectrum.hpp"
#include "index/binning.hpp"
#include "index/peptide_store.hpp"
#include "index/posting_codec.hpp"
#include "index/query_arena.hpp"
#include "index/query_work.hpp"
#include "theospec/fragmenter.hpp"

namespace lbe::bin {
class MmapFile;
class ByteReader;
}  // namespace lbe::bin

namespace lbe::index {

struct IndexParams {
  double resolution = 0.01;     ///< Da per bin (paper: r = 0.01)
  /// Indexed m/z ceiling. 2000 Th covers the observable fragment range of
  /// typical ion-trap/Orbitrap MS2 scans; higher ceilings only grow the
  /// per-partition fixed cost (the bin-offset array).
  Mz max_fragment_mz = 2000.0;
  theospec::FragmentParams fragments;  ///< which ion series to index

  Binning binning() const { return Binning(resolution, max_fragment_mz); }
};

struct QueryParams {
  double fragment_tolerance = 0.05;   ///< ±Da around each query peak (ΔF)
  std::uint32_t shared_peak_min = 4;  ///< cPSM threshold (Shpeak)
  /// Precursor window ±Da; infinity = open search (paper: ΔM = ∞).
  double precursor_tolerance = std::numeric_limits<double>::infinity();
  /// Block-max pruning (format v5 bound metadata): skip 128-posting blocks
  /// whose bound proves they cannot contribute a reportable candidate —
  /// mass-disjoint blocks under a finite precursor window, and (when
  /// prune_top_k > 0) blocks whose score upper bound cannot displace the
  /// current K-th candidate. Exact: psms.tsv is byte-identical either way,
  /// because skipped postings belong only to peptides the emit-time
  /// precursor filter would drop or whose score provably stays below the
  /// reported top-K, and the walk order of surviving postings is unchanged.
  bool prune_blocks = true;
  /// Number of top candidates the caller will report per query; feeds the
  /// score-threshold half of the pruning test (0 disables it). Set by
  /// QueryEngine from SearchParams::top_k, not a user-facing knob.
  std::uint32_t prune_top_k = 0;

  bool open_search() const {
    return !(precursor_tolerance <
             std::numeric_limits<double>::infinity());
  }
};

/// Per-128-posting-block bound metadata (format v5), aligned 1:1 with the
/// v4 codec's block directory. `mass_lo`/`mass_hi` bound the precursor
/// masses of the block's peptides (conservatively rounded outward to
/// float); `max_frags` bounds the number of postings any single peptide of
/// the block has in this index — together they upper-bound what any posting
/// in the block can contribute to a candidate.
struct BlockBound {
  float mass_lo = 0.0f;
  float mass_hi = 0.0f;
  std::uint32_t max_frags = 0;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(BlockBound) == 16, "BlockBound is an on-disk format");

/// The canonical filtration ranking score: ln(shared!) + ln(1 + matched
/// intensity). Defined here (not in search/) because block-max pruning must
/// bound it with the exact same arithmetic the engine ranks with;
/// search::filter_score delegates to this.
inline double candidate_filter_score(std::uint32_t shared_peaks,
                                     double matched_intensity) {
  return std::lgamma(static_cast<double>(shared_peaks) + 1.0) +
         std::log1p(matched_intensity);
}

/// One candidate produced by filtration. Matched query-peak intensity is
/// accumulated during the scorecard pass (as MSFragger/SLM do), so ranking
/// candidates costs O(1) each — no fragment regeneration — and total query
/// work stays conserved when the index is partitioned over ranks.
struct Candidate {
  LocalPeptideId peptide;
  std::uint32_t shared_peaks;
  float matched_intensity;
};

class SlmIndex {
 public:
  /// Builds over all entries of `store` (which must outlive the index).
  SlmIndex(const PeptideStore& store, const chem::ModificationSet& mods,
           const IndexParams& params);

  /// Builds over a subset of store ids (used by ChunkedIndex); postings keep
  /// store-wide local ids so results stay comparable across chunks.
  SlmIndex(const PeptideStore& store, const chem::ModificationSet& mods,
           const IndexParams& params,
           std::span<const LocalPeptideId> subset);

  // The hot arrays are spans that bind either to the owned vectors (built
  // or stream-loaded) or to a mapped index file. Moves are safe — a moved
  // std::vector keeps its heap buffer, so the spans stay valid — but a
  // copy would leave the new spans pointing into the source, so copying is
  // disallowed (the index is shared by reference everywhere it matters).
  SlmIndex(const SlmIndex&) = delete;
  SlmIndex& operator=(const SlmIndex&) = delete;
  SlmIndex(SlmIndex&&) noexcept = default;
  SlmIndex& operator=(SlmIndex&&) noexcept = default;

  const PeptideStore& store() const noexcept { return *store_; }
  const IndexParams& params() const noexcept { return params_; }
  std::size_t num_peptides() const noexcept { return store_->size(); }
  std::uint64_t num_postings() const noexcept { return posting_count_; }

  /// True when queries decode bit-packed posting blocks (a v4 warm start
  /// bound from an mmap, or after compress_in_memory); false while the
  /// raw u32 array is resident.
  bool packed() const noexcept { return packed_mode_; }

  /// Packed-stream footprint of the postings (block directory included),
  /// packing a raw-resident index once if needed — the numerator of the
  /// index_io suite's bytes_per_posting metric.
  std::uint64_t packed_posting_bytes() const;

  /// Switches a raw-resident index to the packed query path in place:
  /// encodes the postings, drops the raw array, and decodes spans at
  /// query time exactly as a mapped v4 chunk does. Benches and tests use
  /// this to exercise the decode kernels without a round trip to disk.
  void compress_in_memory();

  /// Shared-peak filtration of one query spectrum. Appends candidates with
  /// shared_peaks >= params.shared_peak_min (and, unless open search, with
  /// precursor mass within tolerance of the query's). Thread-safe: all
  /// mutable state lives in `arena` (one per thread).
  void query(const chem::Spectrum& spectrum, const QueryParams& params,
             std::vector<Candidate>& out, QueryWork& work,
             QueryArena& arena) const;

  /// Convenience overload using an internal arena. NOT thread-safe; the
  /// hot paths (QueryEngine, benches) pass an explicit arena instead.
  void query(const chem::Spectrum& spectrum, const QueryParams& params,
             std::vector<Candidate>& out, QueryWork& work) const;

  /// The pre-batching filtration walk (one pass per peak per bin), kept as
  /// the equivalence oracle for the batched path and as the baseline the
  /// micro_kernels filtration speedup is measured against. Candidate order
  /// may differ from `query` (threshold-crossing order is walk-dependent).
  /// The (peptide, shared_peaks) multisets are always identical;
  /// matched_intensity is bit-identical whenever the accumulated values
  /// are exact in float (e.g. integer intensities, as the equivalence
  /// tests pin) and may differ in the last ulp otherwise — the two walks
  /// associate the same float sums differently.
  void query_reference(const chem::Spectrum& spectrum,
                       const QueryParams& params, std::vector<Candidate>& out,
                       QueryWork& work, QueryArena& arena) const;

  /// Exact heap bytes: postings + offsets (+ the lazily-grown internal
  /// arena, when the convenience overload has been used).
  std::uint64_t memory_bytes() const noexcept;

  /// Postings-per-bin histogram feeding the load-prediction model.
  std::vector<std::uint32_t> bin_occupancy() const;

  /// Per-block bound metadata (one record per 128-posting block, v5).
  /// Non-empty for built indexes and v5 loads alike.
  std::span<const BlockBound> block_bounds() const noexcept {
    return bounds_;
  }

  /// Dumps the transformed arrays (bin offsets + postings) in the
  /// versioned, checksummed container of index/serialize.hpp; reload with
  /// `load` against the SAME store contents to skip re-fragmentation —
  /// this is what makes the paper's disk-resident chunks cheap to swap in.
  /// `load` throws IoError on corrupt input or mismatched IndexParams.
  void save(std::ostream& out) const;
  static SlmIndex load(std::istream& in, const PeptideStore& store,
                       const chem::ModificationSet& mods,
                       const IndexParams& params);

 private:
  // ChunkedIndex drives query_impl directly so one span build serves every
  // chunk (chunks share IndexParams, hence binning; spans depend only on
  // the spectrum, the tolerance and the binning).
  friend class ChunkedIndex;

  SlmIndex(const PeptideStore& store, const chem::ModificationSet& mods,
           const IndexParams& params, std::nullptr_t /*load tag*/);

  /// Points the spans at the owned storage vectors.
  void bind_owned() noexcept;

  // Raw transformed-array payload (format v5, no framing): what `save`
  // wraps in a checksummed raw section and ChunkedIndex records per chunk
  // in its directory. Layout, starting 8-aligned:
  //   [bin_offset_count u64][posting_count u64]
  //   [block_count u64][packed_byte_count u64]
  //   bin_offsets u32[],             zero-padded to 8
  //   blocks      codec::BlockMeta[] (16 B each, inherently 8-aligned)
  //   packed posting stream bytes,   zero-padded to 8
  //   bounds      BlockBound[block_count] (16 B each, v5)
  // Size and CRC are computable without materializing the payload (the
  // pack runs once and is cached), so the chunk directory — which
  // precedes the payloads — can be written first.
  std::uint64_t arrays_payload_size() const;
  std::uint32_t arrays_payload_crc() const;
  void write_arrays_payload(std::ostream& out) const;

  /// Guarantees blocks_/packed_ describe the postings: a no-op when the
  /// index is already packed (or the pack is cached), one deterministic
  /// codec::encode otherwise. Const because `save` needs it; the cache
  /// lives in mutable storage and never changes observable query results.
  void ensure_packed() const;

  /// Postings [begin, end) as a contiguous u32 slice: the raw array when
  /// resident, otherwise the covering packed blocks decoded into
  /// arena.decoded (slice pointer adjusted to `begin`). The slice is
  /// valid until the next call with the same arena.
  const std::uint32_t* posting_slice(std::uint32_t begin, std::uint32_t end,
                                     QueryArena& arena) const;

  /// Parses one arrays payload from `payload` (positioned at its start,
  /// 8-aligned phase) and validates structure. With a `keepalive` mapping
  /// the spans bind in place (zero copy); without one the arrays are
  /// copied into owned storage. Throws IoError on corrupt input.
  static SlmIndex parse_arrays_payload(
      bin::ByteReader& payload, const PeptideStore& store,
      const chem::ModificationSet& mods, const IndexParams& params,
      std::shared_ptr<const bin::MmapFile> keepalive);

  /// `query` with span reuse: when `rebuild_spans` is false the walk runs
  /// over arena.spans as-is (they must stem from this spectrum/params and
  /// an identically-binned index). `score_floor` is a lower bound on the
  /// final K-th reported filter score (-inf = unknown): blocks whose score
  /// upper bound stays strictly below it are skipped. ChunkedIndex raises
  /// it at chunk boundaries from already-final candidates.
  void query_impl(const chem::Spectrum& spectrum, const QueryParams& params,
                  std::vector<Candidate>& out, QueryWork& work,
                  QueryArena& arena, bool rebuild_spans,
                  double score_floor =
                      -std::numeric_limits<double>::infinity()) const;

  /// Fills bounds_storage_ from the freshly built postings (one pass over
  /// the postings plus a per-peptide fragment-count tally).
  void compute_block_bounds();

  /// Peak windows -> coalesced spans, in arena scratch.
  void build_spans(const chem::Spectrum& spectrum, const QueryParams& params,
                   QueryWork& work, QueryArena& arena) const;

  void emit_candidates(const chem::Spectrum& spectrum,
                       const QueryParams& params, std::vector<Candidate>& out,
                       QueryWork& work, QueryArena& arena) const;

  const PeptideStore* store_;
  const chem::ModificationSet* mods_;
  IndexParams params_;
  Binning binning_;

  // 32-bit offsets mirror the paper's §III-D observation that plain int
  // indexing caps one partition at ~2 billion ions; a partition that would
  // overflow must be split (ChunkedIndex / more ranks). Checked at build.
  // The spans are the access path; they bind to the storage vectors below
  // (cold path) or straight into a mapped rank file (warm path).
  std::span<const std::uint32_t> bin_offsets_;  ///< size num_bins+1
  std::span<const LocalPeptideId> postings_;
  std::vector<std::uint32_t> bin_offsets_storage_;
  std::vector<LocalPeptideId> postings_storage_;
  std::shared_ptr<const bin::MmapFile> keepalive_;

  // Bit-packed posting blocks (format v4, index/posting_codec.hpp). A
  // built index stays raw u32 — the zero-overhead path — and packs once,
  // lazily, when saved (mutable cache below). A v4 warm start arrives
  // packed: eager loads decode back to u32 at parse and discard the
  // packed form; mapped loads bind these spans into the mapping and the
  // span walk decodes through posting_slice at query time. In packed
  // mode postings_ is empty and posting_count_ carries the total.
  mutable std::span<const codec::BlockMeta> blocks_;
  mutable std::span<const std::byte> packed_;
  mutable std::vector<codec::BlockMeta> blocks_storage_;
  mutable std::vector<std::byte> packed_storage_;
  mutable bool packed_cached_ = false;

  // Per-block bound metadata (v5). Computed at build, parsed (and
  // validated) from v5 payloads; mapped loads bind the span in place.
  std::span<const BlockBound> bounds_;
  std::vector<BlockBound> bounds_storage_;
  std::uint64_t posting_count_ = 0;
  bool packed_mode_ = false;

  // Backs the no-arena convenience overload only (mutable: query is
  // logically const). Untouched by the arena-passing hot paths.
  mutable QueryArena internal_arena_;
};

}  // namespace lbe::index
