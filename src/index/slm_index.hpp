// SLM-style shared-peak fragment-ion index.
//
// Build: every stored peptide is fragmented (b/y ions), each fragment m/z is
// quantized (see Binning), and a CSR structure maps bin -> postings (local
// peptide ids). Within a bin, postings are ordered by parent precursor mass
// then id — the secondary sort the paper's Fig. 1 describes, which makes
// precursor-window scans over a bin contiguous.
//
// Query: for each (preprocessed) query peak, visit bins within the fragment
// tolerance and bump a per-peptide counter ("scorecard"). Peptides reaching
// the shared-peak threshold become candidate PSMs (cPSMs). The scorecard is
// epoch-stamped so it never needs clearing between queries.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "chem/spectrum.hpp"
#include "index/binning.hpp"
#include "index/peptide_store.hpp"
#include "theospec/fragmenter.hpp"

namespace lbe::index {

struct IndexParams {
  double resolution = 0.01;     ///< Da per bin (paper: r = 0.01)
  /// Indexed m/z ceiling. 2000 Th covers the observable fragment range of
  /// typical ion-trap/Orbitrap MS2 scans; higher ceilings only grow the
  /// per-partition fixed cost (the bin-offset array).
  Mz max_fragment_mz = 2000.0;
  theospec::FragmentParams fragments;  ///< which ion series to index

  Binning binning() const { return Binning(resolution, max_fragment_mz); }
};

struct QueryParams {
  double fragment_tolerance = 0.05;   ///< ±Da around each query peak (ΔF)
  std::uint32_t shared_peak_min = 4;  ///< cPSM threshold (Shpeak)
  /// Precursor window ±Da; infinity = open search (paper: ΔM = ∞).
  double precursor_tolerance = std::numeric_limits<double>::infinity();

  bool open_search() const {
    return !(precursor_tolerance <
             std::numeric_limits<double>::infinity());
  }
};

/// One candidate produced by filtration. Matched query-peak intensity is
/// accumulated during the scorecard pass (as MSFragger/SLM do), so ranking
/// candidates costs O(1) each — no fragment regeneration — and total query
/// work stays conserved when the index is partitioned over ranks.
struct Candidate {
  LocalPeptideId peptide;
  std::uint32_t shared_peaks;
  float matched_intensity;
};

/// Deterministic work counters — the machine-independent load measure used
/// alongside wall time by the perf layer.
struct QueryWork {
  std::uint64_t peaks_processed = 0;
  std::uint64_t bins_visited = 0;
  std::uint64_t postings_touched = 0;
  std::uint64_t candidates = 0;

  QueryWork& operator+=(const QueryWork& other) {
    peaks_processed += other.peaks_processed;
    bins_visited += other.bins_visited;
    postings_touched += other.postings_touched;
    candidates += other.candidates;
    return *this;
  }

  /// Scalar cost proxy: dominated by postings traffic, like the real engine.
  double cost_units() const {
    return static_cast<double>(postings_touched) +
           0.25 * static_cast<double>(bins_visited) +
           8.0 * static_cast<double>(candidates);
  }
};

class SlmIndex {
 public:
  /// Builds over all entries of `store` (which must outlive the index).
  SlmIndex(const PeptideStore& store, const chem::ModificationSet& mods,
           const IndexParams& params);

  /// Builds over a subset of store ids (used by ChunkedIndex); postings keep
  /// store-wide local ids so results stay comparable across chunks.
  SlmIndex(const PeptideStore& store, const chem::ModificationSet& mods,
           const IndexParams& params,
           std::span<const LocalPeptideId> subset);

  const PeptideStore& store() const noexcept { return *store_; }
  const IndexParams& params() const noexcept { return params_; }
  std::size_t num_peptides() const noexcept { return store_->size(); }
  std::uint64_t num_postings() const noexcept { return postings_.size(); }

  /// Shared-peak filtration of one query spectrum. Appends candidates with
  /// shared_peaks >= params.shared_peak_min (and, unless open search, with
  /// precursor mass within tolerance of the query's).
  void query(const chem::Spectrum& spectrum, const QueryParams& params,
             std::vector<Candidate>& out, QueryWork& work) const;

  /// Exact heap bytes: postings + offsets + scorecard (store counted
  /// separately so shared/distributed accounting can split them).
  std::uint64_t memory_bytes() const noexcept;

  /// Postings-per-bin histogram feeding the load-prediction model.
  std::vector<std::uint32_t> bin_occupancy() const;

  /// Dumps the transformed arrays (bin offsets + postings); reload with
  /// `load` against the SAME store contents to skip re-fragmentation —
  /// this is what makes the paper's disk-resident chunks cheap to swap in.
  void save(std::ostream& out) const;
  static SlmIndex load(std::istream& in, const PeptideStore& store,
                       const chem::ModificationSet& mods,
                       const IndexParams& params);

 private:
  SlmIndex(const PeptideStore& store, const chem::ModificationSet& mods,
           const IndexParams& params, std::nullptr_t /*load tag*/);

  const PeptideStore* store_;
  const chem::ModificationSet* mods_;
  IndexParams params_;
  Binning binning_;

  // 32-bit offsets mirror the paper's §III-D observation that plain int
  // indexing caps one partition at ~2 billion ions; a partition that would
  // overflow must be split (ChunkedIndex / more ranks). Checked at build.
  std::vector<std::uint32_t> bin_offsets_;     ///< size num_bins+1
  std::vector<LocalPeptideId> postings_;

  // Epoch-stamped scorecard (mutable: query is logically const).
  mutable std::vector<std::uint32_t> stamp_;
  mutable std::vector<std::uint16_t> count_;
  mutable std::vector<float> intensity_;
  mutable std::uint32_t epoch_ = 0;
};

}  // namespace lbe::index
