// Bit-packed posting blocks and their SIMD unpack kernels (format v4).
//
// Postings inside a bin are sorted by (parent mass, id), not by id, so a
// sequential delta chain would need signed deltas and a serial prefix sum
// to undo. Frame-of-reference coding sidesteps both: every 128-posting
// block stores its minimum as a 32-bit base plus each value's offset from
// that base at one fixed bit width chosen per block at encode time. Decode
// is order-preserving (the walk order the scorecard depends on byte-for-
// byte), branch-free per value, and vectorizes as unpack-then-broadcast-
// add. Blocks that would not shrink (width 32, or tiny tails) fall back to
// verbatim u32 so the packed stream is never larger than raw.
//
// Layout — one canonical byte format every kernel decodes identically:
//
//   block   := 128 consecutive postings of a chunk's CSR array (the last
//              block of a chunk may hold fewer)
//   meta    := {offset u64, base u32, width u8, tag u8, reserved u16}
//              (16 B; `offset` is the block's byte offset in the packed
//              stream, so span walks random-access their first block)
//   kRaw    := the block's values verbatim, little-endian u32
//   kPacked := value v lives in lane v%8, row v/8; each lane packs its
//              rows at `width` bits, least-significant-first, into a
//              private u32 word stream; lane word k is word 8*k+lane of
//              the block — i.e. the stream is a sequence of 32-byte
//              "stripes" of one u32 per lane. A block with R = ceil(n/8)
//              rows occupies ceil(R*width/32) stripes, zero-padded.
//
// The 8-lane vertical layout is the natural shape for AVX2 (one stripe =
// one ymm register); SSE4.1 decodes the two 16-byte stripe halves with
// identical shift phases, and the scalar kernel walks the same words one
// lane at a time — all three produce identical output for identical
// bytes, which CI enforces (see .github/workflows/ci.yml).
//
// Kernel selection is process-global: `set_simd_level` (the `--simd`
// knob in lbectl/lbebench) picks scalar/SSE4.1/AVX2 or kAuto, which
// resolves to the widest ISA the CPU reports. Requests the CPU cannot
// honor fall back to the widest supported level rather than faulting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace lbe::index::codec {

/// Postings per block. 128 keeps the decode scratch L1-resident (512 B)
/// and the per-block metadata overhead at 16/128 = 0.125 B per posting.
inline constexpr std::uint32_t kBlockValues = 128;

/// Block encodings. u8 on disk; anything else is corruption.
inline constexpr std::uint8_t kTagPacked = 0;
inline constexpr std::uint8_t kTagRaw = 1;

/// Per-block directory entry, stored verbatim in the v4 arrays payload
/// (16 B, 8-aligned so the directory can be viewed in place from a
/// mapping). `offset` is relative to the start of the packed byte stream.
struct BlockMeta {
  std::uint64_t offset = 0;
  std::uint32_t base = 0;
  std::uint8_t width = 0;  ///< bits per value offset, 0..32 (kPacked only)
  std::uint8_t tag = kTagPacked;
  std::uint16_t reserved = 0;
};
static_assert(sizeof(BlockMeta) == 16);

/// Bytes block `meta` occupies in the packed stream for `n` values.
std::uint64_t block_bytes(const BlockMeta& meta, std::uint32_t n) noexcept;

/// Encodes `values` into a packed stream: one BlockMeta per kBlockValues
/// (the final block may be short). `blocks` and `bytes` are cleared and
/// filled; offsets are relative to the start of `bytes`. Deterministic:
/// identical input yields identical bytes on every ISA.
void encode(std::span<const std::uint32_t> values,
            std::vector<BlockMeta>& blocks, std::vector<std::byte>& bytes);

/// Decodes whole blocks [block_first, block_first + block_count) into
/// `out`, block b landing at out + (b - block_first) * kBlockValues —
/// so posting i of the array lands at out[i - block_first*kBlockValues]
/// regardless of how short the final block is. `total_count` is the
/// array's full posting count (it determines the final block's length).
/// `out` must hold block_count * kBlockValues values. Uses the resolved
/// process-global kernel. The caller is responsible for having validated
/// the metadata (validate_blocks below): this path is the query hot loop
/// and re-checks nothing.
void decode_blocks(std::span<const BlockMeta> blocks,
                   std::span<const std::byte> bytes,
                   std::uint64_t total_count, std::size_t block_first,
                   std::size_t block_count, std::uint32_t* out);

/// Decodes only the posting values [first, last) — rounded outward to the
/// layout's 8-value row boundaries — with the same output addressing as
/// decode_blocks: posting i lands at out[i - (first / kBlockValues) *
/// kBlockValues], and `out` must span every block the range touches.
/// Values outside the rounded row range are left unwritten. This is the
/// span-walk entry point: a bin span touching 20 postings unpacks two or
/// three 8-value rows instead of whole 128-value blocks. Same
/// validation-is-the-caller's-problem contract as decode_blocks.
void decode_range(std::span<const BlockMeta> blocks,
                  std::span<const std::byte> bytes, std::uint64_t total_count,
                  std::uint64_t first, std::uint64_t last, std::uint32_t* out);

/// Structural validation for loaded block directories: block count
/// matches total_count, tags/widths/reserved fields are legal, and the
/// per-block extents tile `stream_bytes` exactly (no byte of the stream
/// escapes a block, no block escapes the stream). Throws IoError.
void validate_blocks(std::span<const BlockMeta> blocks,
                     std::uint64_t total_count, std::uint64_t stream_bytes);

// ---- kernel selection ------------------------------------------------------

enum class SimdLevel : int {
  kAuto = 0,    ///< widest ISA the CPU supports (the default)
  kScalar = 1,  ///< portable reference kernel
  kSse = 2,     ///< SSE4.1
  kAvx2 = 3,    ///< AVX2
};

/// True when the running CPU can execute `level` (kAuto/kScalar: always).
bool cpu_supports(SimdLevel level) noexcept;

/// Sets the process-global decode kernel. kAuto — and any level the CPU
/// cannot honor — resolves to the widest supported ISA. Not meant to be
/// raced against in-flight queries; lbectl/lbebench call it once at
/// startup, tests call it between queries.
void set_simd_level(SimdLevel level) noexcept;

/// The level requests resolve to right now (never kAuto).
SimdLevel resolved_simd_level() noexcept;

/// "auto" | "scalar" | "sse" | "avx2".
const char* simd_level_name(SimdLevel level) noexcept;

/// Parses a `--simd` argument; returns false on unknown spelling.
bool parse_simd_level(std::string_view text, SimdLevel& out) noexcept;

}  // namespace lbe::index::codec
