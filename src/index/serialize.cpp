#include "index/serialize.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/binary_io.hpp"
#include "common/error.hpp"
#include "common/mmap_file.hpp"

namespace lbe::index {

namespace serialize {

void write_header(std::ostream& out, Kind kind) {
  bin::write_pod(out, kMagic);
  bin::write_pod(out, kFormatVersion);
  bin::write_pod(out, static_cast<std::uint32_t>(kind));
}

namespace {

void check_header_fields(std::uint32_t magic, std::uint32_t version,
                         std::uint32_t kind, Kind expected) {
  if (magic != kMagic) {
    throw IoError("not an LBE index file (bad magic)");
  }
  if (version != kFormatVersion) {
    throw FormatVersionError(
        "unsupported LBE index format version " +
                  std::to_string(version) + " (this build reads version " +
                  std::to_string(kFormatVersion) +
                  "; regenerate with `lbectl prepare`)");
  }
  if (kind != static_cast<std::uint32_t>(expected)) {
    throw IoError("LBE index stream holds a different component (kind " +
                  std::to_string(kind) + ")");
  }
}

}  // namespace

void read_header(std::istream& in, Kind expected) {
  const auto magic = bin::read_pod<std::uint32_t>(in);
  const auto version = bin::read_pod<std::uint32_t>(in);
  const auto kind = bin::read_pod<std::uint32_t>(in);
  check_header_fields(magic, version, kind, expected);
}

void read_header_mapped(bin::ByteReader& reader, Kind expected) {
  const auto magic = reader.read_pod<std::uint32_t>();
  const auto version = reader.read_pod<std::uint32_t>();
  const auto kind = reader.read_pod<std::uint32_t>();
  check_header_fields(magic, version, kind, expected);
}

void require(bool condition, const char* message) {
  if (!condition) {
    throw IoError(std::string("corrupt index stream: ") + message);
  }
}

void write_index_params(std::ostream& out, const IndexParams& params) {
  bin::write_pod(out, params.resolution);
  bin::write_pod(out, params.max_fragment_mz);
  bin::write_pod(out, static_cast<std::uint8_t>(
                          params.fragments.max_fragment_charge));
  bin::write_pod(out, static_cast<std::uint8_t>(params.fragments.a_ions));
  bin::write_pod(out,
                 static_cast<std::uint8_t>(params.fragments.neutral_loss_nh3));
  bin::write_pod(out,
                 static_cast<std::uint8_t>(params.fragments.neutral_loss_h2o));
}

IndexParams read_index_params(std::istream& in) {
  IndexParams params;
  params.resolution = bin::read_pod<double>(in);
  params.max_fragment_mz = bin::read_pod<Mz>(in);
  params.fragments.max_fragment_charge =
      static_cast<Charge>(bin::read_pod<std::uint8_t>(in));
  params.fragments.a_ions = bin::read_pod<std::uint8_t>(in) != 0;
  params.fragments.neutral_loss_nh3 = bin::read_pod<std::uint8_t>(in) != 0;
  params.fragments.neutral_loss_h2o = bin::read_pod<std::uint8_t>(in) != 0;
  require(params.resolution > 0.0 && params.max_fragment_mz > 0.0,
          "non-positive index parameters");
  return params;
}

bool same_index_params(const IndexParams& a, const IndexParams& b) {
  return a.resolution == b.resolution &&
         a.max_fragment_mz == b.max_fragment_mz &&
         a.fragments.max_fragment_charge == b.fragments.max_fragment_charge &&
         a.fragments.a_ions == b.fragments.a_ions &&
         a.fragments.neutral_loss_nh3 == b.fragments.neutral_loss_nh3 &&
         a.fragments.neutral_loss_h2o == b.fragments.neutral_loss_h2o;
}

void write_lbe_params(std::ostream& out, const core::LbeParams& params) {
  bin::write_pod(out, static_cast<std::uint8_t>(params.grouping.criterion));
  bin::write_pod(out, params.grouping.d);
  bin::write_pod(out, params.grouping.d_prime);
  bin::write_pod(out, params.grouping.gsize);
  bin::write_pod(out, static_cast<std::uint8_t>(params.partition.policy));
  bin::write_pod(out, static_cast<std::int32_t>(params.partition.ranks));
  bin::write_pod(out, params.partition.seed);
  bin::write_pod(out,
                 static_cast<std::uint8_t>(params.partition.rotate_groups));
  bin::write_vector(out, params.partition.weights);
}

core::LbeParams read_lbe_params(std::istream& in) {
  core::LbeParams params;
  const auto criterion = bin::read_pod<std::uint8_t>(in);
  require(criterion == 1 || criterion == 2, "bad grouping criterion");
  params.grouping.criterion = static_cast<core::GroupingCriterion>(criterion);
  params.grouping.d = bin::read_pod<std::uint32_t>(in);
  params.grouping.d_prime = bin::read_pod<double>(in);
  params.grouping.gsize = bin::read_pod<std::uint32_t>(in);
  const auto policy = bin::read_pod<std::uint8_t>(in);
  require(policy <= static_cast<std::uint8_t>(core::Policy::kWeighted),
          "bad partition policy");
  params.partition.policy = static_cast<core::Policy>(policy);
  params.partition.ranks = bin::read_pod<std::int32_t>(in);
  require(params.partition.ranks >= 1, "bad rank count");
  params.partition.seed = bin::read_pod<std::uint64_t>(in);
  params.partition.rotate_groups = bin::read_pod<std::uint8_t>(in) != 0;
  params.partition.weights = bin::read_vector<double>(in);
  return params;
}

bool same_lbe_params(const core::LbeParams& a, const core::LbeParams& b) {
  return a.grouping.criterion == b.grouping.criterion &&
         a.grouping.d == b.grouping.d &&
         a.grouping.d_prime == b.grouping.d_prime &&
         a.grouping.gsize == b.grouping.gsize &&
         a.partition.policy == b.partition.policy &&
         a.partition.ranks == b.partition.ranks &&
         a.partition.seed == b.partition.seed &&
         a.partition.rotate_groups == b.partition.rotate_groups &&
         a.partition.weights == b.partition.weights;
}

}  // namespace serialize

std::string bundle_manifest_path(const std::string& dir) {
  return dir + "/index.manifest";
}

std::string bundle_rank_path(const std::string& dir, int rank) {
  return dir + "/rank" + std::to_string(rank) + ".idx";
}

void save_index_manifest(const std::string& dir, const IndexBundle& bundle) {
  namespace sz = serialize;
  std::filesystem::create_directories(dir);

  const std::string manifest_path = bundle_manifest_path(dir);
  std::ofstream out(manifest_path, std::ios::binary);
  if (!out) throw IoError("cannot write index manifest: " + manifest_path);
  sz::write_header(out, sz::Kind::kManifest);
  {
    std::ostringstream payload;
    sz::write_lbe_params(payload, bundle.lbe);
    bin::write_section(out, sz::kSecLbeParams, payload.str());
  }
  {
    std::ostringstream payload;
    sz::write_index_params(payload, bundle.index_params);
    bin::write_pod(payload, static_cast<std::uint64_t>(
                                bundle.chunking.max_chunk_entries));
    // The rank count comes from the mapping table, not per_rank, so a
    // manifest-only save (streamed prepare) records the right value.
    bin::write_pod(payload,
                   static_cast<std::uint32_t>(bundle.mapping.num_ranks()));
    bin::write_pod(payload, bundle.database_crc);
    bin::write_section(out, sz::kSecParams, payload.str());
  }
  bundle.mapping.save(out);
  if (!out) throw IoError("index manifest write failed: " + manifest_path);
}

void save_index_bundle(const std::string& dir, const IndexBundle& bundle) {
  LBE_CHECK(bundle.ranks() == bundle.mapping.num_ranks(),
            "bundle rank set does not match its mapping table");
  save_index_manifest(dir, bundle);
  for (int rank = 0; rank < bundle.ranks(); ++rank) {
    const auto& index = bundle.per_rank[static_cast<std::size_t>(rank)];
    LBE_CHECK(index != nullptr, "bundle rank index missing");
    index->save_file(bundle_rank_path(dir, rank));
  }
}

IndexBundle load_index_bundle(const std::string& dir,
                              const chem::ModificationSet& mods,
                              BundleLoadMode mode) {
  namespace sz = serialize;
  const std::string manifest_path = bundle_manifest_path(dir);
  std::ifstream in(manifest_path, std::ios::binary);
  if (!in) throw IoError("cannot open index manifest: " + manifest_path);

  IndexBundle bundle;
  sz::read_header(in, sz::Kind::kManifest);
  std::uint32_t rank_count = 0;
  {
    std::istringstream payload(bin::read_section(in, sz::kSecLbeParams));
    bundle.lbe = sz::read_lbe_params(payload);
  }
  {
    std::istringstream payload(bin::read_section(in, sz::kSecParams));
    bundle.index_params = sz::read_index_params(payload);
    bundle.chunking.max_chunk_entries =
        static_cast<std::size_t>(bin::read_pod<std::uint64_t>(payload));
    rank_count = bin::read_pod<std::uint32_t>(payload);
    sz::require(rank_count >= 1 && rank_count <= 1u << 20,
                "implausible rank count");
    bundle.database_crc = bin::read_pod<std::uint32_t>(payload);
  }
  bundle.mapping = MappingTable::load(in);
  sz::require(bundle.mapping.num_ranks() == static_cast<int>(rank_count),
              "mapping table rank count disagrees with the manifest");

  bundle.per_rank.reserve(rank_count);
  for (std::uint32_t rank = 0; rank < rank_count; ++rank) {
    const std::string path = bundle_rank_path(dir, static_cast<int>(rank));
    auto index = mode == BundleLoadMode::kMapped
                     ? ChunkedIndex::map_file(path, mods, bundle.index_params)
                     : ChunkedIndex::load_file(path, mods,
                                               bundle.index_params);
    // The store columns are validated in both modes (mapping a store is
    // its first touch), so this count is trustworthy even when the chunk
    // payloads behind it are still cold.
    sz::require(index->num_peptides() ==
                    bundle.mapping.rank_count(static_cast<RankId>(rank)),
                "rank index entry count disagrees with the mapping table");
    bundle.per_rank.push_back(std::move(index));
  }
  return bundle;
}

}  // namespace lbe::index
