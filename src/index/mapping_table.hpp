// Master-side mapping from (rank, local peptide id) to global peptide id.
//
// The paper (§III-D): "The mapping table is a simple array of size N where
// each i-th chunk of array of size N/p contains the indices of peptide index
// entries mapped to machine i" — lookup is one memory access. Ranks may own
// unequal counts (N % p != 0, or group-aware policies), so we keep an offset
// array alongside the flat id array; lookup stays O(1).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/types.hpp"

namespace lbe::index {

class MappingTable {
 public:
  MappingTable() = default;

  /// `per_rank[m][l]` = global id of rank m's local peptide l.
  /// Throws InvariantError if any global id appears twice or the union is
  /// not exactly {0..N-1}.
  explicit MappingTable(
      const std::vector<std::vector<GlobalPeptideId>>& per_rank);

  int num_ranks() const noexcept { return static_cast<int>(offsets_.size()) - 1; }
  std::size_t total_peptides() const noexcept { return flat_.size(); }
  std::size_t rank_count(RankId rank) const;

  /// O(1): the paper's single-memory-access lookup.
  GlobalPeptideId to_global(RankId rank, LocalPeptideId local) const;

  /// Inverse lookups (O(1), via precomputed inverse arrays).
  RankId rank_of(GlobalPeptideId global) const;
  LocalPeptideId local_of(GlobalPeptideId global) const;

  /// Heap bytes (this is the distributed implementation's master-side memory
  /// overhead accounted in Fig. 5).
  std::uint64_t memory_bytes() const noexcept;

  /// Versioned, checksummed serialization (index/serialize.hpp): the offset
  /// and flat arrays travel; the inverse arrays are rebuilt — and thereby
  /// re-validated — on load. `load` throws IoError on corrupt input.
  void save(std::ostream& out) const;
  static MappingTable load(std::istream& in);

  /// Same rank assignment (offsets + flat ids); the inverse arrays are
  /// derived, so they never need comparing.
  friend bool operator==(const MappingTable& a, const MappingTable& b) {
    return a.offsets_ == b.offsets_ && a.flat_ == b.flat_;
  }

 private:
  std::vector<std::uint64_t> offsets_{0};  ///< per-rank start into flat_
  std::vector<GlobalPeptideId> flat_;      ///< the paper's size-N array
  std::vector<std::uint32_t> inv_rank_;    ///< global -> rank
  std::vector<LocalPeptideId> inv_local_;  ///< global -> local
};

}  // namespace lbe::index
