#include "index/slm_index.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <istream>
#include <numeric>
#include <ostream>
#include <sstream>

#include "common/binary_io.hpp"
#include "common/error.hpp"
#include "common/mmap_file.hpp"
#include "index/serialize.hpp"

namespace lbe::index {

SlmIndex::SlmIndex(const PeptideStore& store,
                   const chem::ModificationSet& mods,
                   const IndexParams& params)
    : SlmIndex(store, mods, params, std::span<const LocalPeptideId>{}) {}

SlmIndex::SlmIndex(const PeptideStore& store,
                   const chem::ModificationSet& mods,
                   const IndexParams& params,
                   std::span<const LocalPeptideId> subset)
    : store_(&store), mods_(&mods), params_(params),
      binning_(params.binning()) {
  // Materialize the id list: empty subset means "all".
  std::vector<LocalPeptideId> ids;
  if (subset.empty()) {
    ids.resize(store.size());
    std::iota(ids.begin(), ids.end(), LocalPeptideId{0});
  } else {
    ids.assign(subset.begin(), subset.end());
    for (const LocalPeptideId id : ids) {
      LBE_CHECK(id < store.size(), "subset id out of range");
    }
  }

  // Pass 1: count postings per bin. (bin, id) pairs are never materialized;
  // two passes over the fragment generator trade CPU for peak memory, which
  // is the SLM-Transform design point (the paper's §V-B temporary-footprint
  // discussion is about engines that do materialize).
  const MzBin num_bins = binning_.num_bins();
  std::vector<std::uint64_t> counts(num_bins, 0);
  auto for_each_fragment = [&](LocalPeptideId id, auto&& fn) {
    const chem::Peptide peptide = store_->materialize(id);
    for (const auto& fragment :
         theospec::fragment_peptide(peptide, *mods_, params_.fragments)) {
      if (!binning_.in_range(fragment.mz)) continue;
      fn(binning_.bin(fragment.mz));
    }
  };
  for (const LocalPeptideId id : ids) {
    for_each_fragment(id, [&](MzBin bin) { ++counts[bin]; });
  }

  std::uint64_t running = 0;
  for (MzBin b = 0; b < num_bins; ++b) running += counts[b];
  LBE_CHECK(running < 0xFFFFFFFFull,
            "partition exceeds the 32-bit ion-index limit (paper §III-D): "
            "split the data over more ranks or enable chunking");

  bin_offsets_storage_.assign(num_bins + 1, 0);
  std::uint32_t offset = 0;
  for (MzBin b = 0; b < num_bins; ++b) {
    bin_offsets_storage_[b] = offset;
    offset += static_cast<std::uint32_t>(counts[b]);
  }
  bin_offsets_storage_[num_bins] = offset;

  // Pass 2: fill postings via per-bin write cursors.
  postings_storage_.assign(offset, 0);
  std::vector<std::uint32_t> cursor(bin_offsets_storage_.begin(),
                                    bin_offsets_storage_.end() - 1);
  for (const LocalPeptideId id : ids) {
    for_each_fragment(
        id, [&](MzBin bin) { postings_storage_[cursor[bin]++] = id; });
  }

  // Secondary order inside each bin: parent precursor mass, then id — the
  // Fig. 1 sort that keeps precursor-window scans contiguous. Iterating ids
  // in input order already yields id order; re-sort by (mass, id).
  for (MzBin b = 0; b < num_bins; ++b) {
    const auto begin = postings_storage_.begin() +
                       static_cast<std::ptrdiff_t>(bin_offsets_storage_[b]);
    const auto end = postings_storage_.begin() +
                     static_cast<std::ptrdiff_t>(bin_offsets_storage_[b + 1]);
    std::sort(begin, end, [this](LocalPeptideId a, LocalPeptideId b2) {
      const Mass ma = store_->mass(a);
      const Mass mb = store_->mass(b2);
      if (ma != mb) return ma < mb;
      return a < b2;
    });
  }
  compute_block_bounds();
  bind_owned();
}

void SlmIndex::bind_owned() noexcept {
  bin_offsets_ = bin_offsets_storage_;
  postings_ = postings_storage_;
  posting_count_ = postings_storage_.size();
  bounds_ = bounds_storage_;
}

void SlmIndex::compute_block_bounds() {
  const std::size_t n = postings_storage_.size();
  bounds_storage_.assign((n + codec::kBlockValues - 1) / codec::kBlockValues,
                         BlockBound{});
  if (n == 0) return;
  // Per-peptide posting count in THIS index: the cap on how many scorecard
  // touches one peptide can receive in a single walk, since spans are
  // disjoint bin ranges and each posting lies in at most one of them.
  std::vector<std::uint32_t> nfrags(store_->size(), 0);
  for (const LocalPeptideId id : postings_storage_) ++nfrags[id];
  for (std::size_t b = 0; b < bounds_storage_.size(); ++b) {
    const std::size_t begin = b * codec::kBlockValues;
    const std::size_t end = std::min(n, begin + codec::kBlockValues);
    Mass lo = store_->mass(postings_storage_[begin]);
    Mass hi = lo;
    std::uint32_t frags = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const LocalPeptideId id = postings_storage_[i];
      const Mass mass = store_->mass(id);
      lo = std::min(lo, mass);
      hi = std::max(hi, mass);
      frags = std::max(frags, nfrags[id]);
    }
    BlockBound& bound = bounds_storage_[b];
    // Round outward so the float bounds cover the double masses.
    bound.mass_lo = static_cast<float>(lo);
    if (static_cast<double>(bound.mass_lo) > lo) {
      bound.mass_lo = std::nextafter(
          bound.mass_lo, -std::numeric_limits<float>::infinity());
    }
    bound.mass_hi = static_cast<float>(hi);
    if (static_cast<double>(bound.mass_hi) < hi) {
      bound.mass_hi = std::nextafter(
          bound.mass_hi, std::numeric_limits<float>::infinity());
    }
    bound.max_frags = frags;
  }
}

void SlmIndex::build_spans(const chem::Spectrum& spectrum,
                           const QueryParams& params, QueryWork& work,
                           QueryArena& arena) const {
  const MzBin tol_bins = binning_.tolerance_bins(params.fragment_tolerance);
  const MzBin last_bin = binning_.num_bins() - 1;

  // Per-peak tolerance windows. The close bin may be last_bin + 1 ==
  // num_bins, which is a valid sentinel index into bin_offsets_. Finalized
  // spectra arrive m/z-sorted and the window width is constant (modulo
  // edge clamping, which preserves order), so both the open and the close
  // sequences are already non-decreasing; an unfinalized caller is
  // detected below and pays one sort instead of getting wrong counts.
  arena.windows.clear();
  bool sorted = true;
  MzBin prev_open = 0;
  MzBin prev_close = 0;
  for (std::size_t peak = 0; peak < spectrum.size(); ++peak) {
    const Mz mz = spectrum.mz(peak);
    if (!binning_.in_range(mz)) continue;
    ++work.peaks_processed;
    const MzBin center = binning_.bin(mz);
    const MzBin lo = center > tol_bins ? center - tol_bins : 0;
    const MzBin hi = std::min<MzBin>(center + tol_bins, last_bin);
    // The sweep needs BOTH boundary sequences non-decreasing; opens alone
    // are not enough when several out-of-order peaks clamp their open to
    // bin 0 but keep distinct closes.
    sorted = sorted && lo >= prev_open && hi + 1 >= prev_close;
    prev_open = lo;
    prev_close = hi + 1;
    arena.windows.push_back(
        QueryArena::Window{lo, hi + 1, spectrum.intensity(peak)});
  }
  arena.spans.clear();
  if (arena.windows.empty()) return;
  if (!sorted) {
    // (open, close) order restores both sequences: for distinct opens the
    // closes follow (both monotone in the center bin; clamps preserve
    // order), and ties — e.g. several opens clamped to 0 — are broken by
    // close directly.
    std::sort(arena.windows.begin(), arena.windows.end(),
              [](const QueryArena::Window& a, const QueryArena::Window& b) {
                if (a.open != b.open) return a.open < b.open;
                return a.close < b.close;
              });
  }

  // Linear two-pointer sweep: merge the sorted open/close boundaries into
  // maximal runs of constant coverage. Intensity runs in double so a
  // peak's open/close contributions cancel exactly for any value that is
  // exact in float (e.g. integer-valued intensities).
  const std::size_t n = arena.windows.size();
  std::size_t oi = 0;  // next window to open
  std::size_t ci = 0;  // next window to close
  std::uint32_t multiplicity = 0;
  double intensity = 0.0;
  MzBin prev = arena.windows.front().open;
  while (ci < n) {
    const MzBin next_open =
        oi < n ? arena.windows[oi].open : std::numeric_limits<MzBin>::max();
    const MzBin next_close = arena.windows[ci].close;
    const MzBin boundary = std::min(next_open, next_close);
    if (multiplicity > 0 && boundary > prev) {
      arena.spans.push_back(BinSpan{prev, boundary, multiplicity,
                                    static_cast<float>(intensity)});
    }
    prev = boundary;
    while (oi < n && arena.windows[oi].open == boundary) {
      ++multiplicity;
      intensity += static_cast<double>(arena.windows[oi].intensity);
      ++oi;
    }
    while (ci < n && arena.windows[ci].close == boundary) {
      --multiplicity;
      intensity -= static_cast<double>(arena.windows[ci].intensity);
      ++ci;
    }
  }
}

void SlmIndex::emit_candidates(const chem::Spectrum& spectrum,
                               const QueryParams& params,
                               std::vector<Candidate>& out, QueryWork& work,
                               QueryArena& arena) const {
  const bool filter_precursor =
      params.precursor_tolerance < std::numeric_limits<double>::infinity();
  const Mass query_mass = spectrum.precursor.neutral_mass;
  for (const LocalPeptideId pep : arena.reached) {
    if (filter_precursor) {
      if (std::abs(store_->mass(pep) - query_mass) >
          params.precursor_tolerance) {
        continue;
      }
    }
    const QueryArena::Slot& slot = arena.slot(pep);
    out.push_back(Candidate{pep, slot.count, slot.intensity});
    ++work.candidates;
  }
}

void SlmIndex::query(const chem::Spectrum& spectrum,
                     const QueryParams& params, std::vector<Candidate>& out,
                     QueryWork& work, QueryArena& arena) const {
  query_impl(spectrum, params, out, work, arena, /*rebuild_spans=*/true);
}

namespace {

/// Absorbs float-accumulation and lgamma rounding slack in the score-bound
/// test: a block is pruned only when its upper bound clears the floor by
/// more than this, so the bound stays conservative.
constexpr double kScoreBoundSlack = 1e-4;

}  // namespace

void SlmIndex::query_impl(const chem::Spectrum& spectrum,
                          const QueryParams& params,
                          std::vector<Candidate>& out, QueryWork& work,
                          QueryArena& arena, bool rebuild_spans,
                          double score_floor) const {
  arena.begin_query(store_->size());
  if (rebuild_spans) build_spans(spectrum, params, work, arena);

  const std::uint32_t threshold = std::max<std::uint32_t>(
      1, params.shared_peak_min);
  const std::uint32_t epoch = arena.epoch();
  QueryArena::Slot* __restrict slots = arena.slots_data();

  // Block-max pruning (v5 bounds). Both tests are exact w.r.t. psms.tsv:
  // a mass-disjoint block holds only peptides the emit-time precursor
  // filter drops, and a score-pruned block holds only peptides whose final
  // filter score provably stays below the already-final K-th candidate —
  // either way no surviving peptide loses a touch, and surviving postings
  // are walked in the identical order, so accumulation is bit-identical.
  const bool finite_window =
      params.precursor_tolerance < std::numeric_limits<double>::infinity();
  const bool mass_prune =
      params.prune_blocks && !bounds_.empty() && finite_window;
  const bool score_prune =
      params.prune_blocks && !bounds_.empty() &&
      score_floor > -std::numeric_limits<double>::infinity();
  const Mass query_mass = spectrum.precursor.neutral_mass;
  const double window_lo = query_mass - params.precursor_tolerance;
  const double window_hi = query_mass + params.precursor_tolerance;
  double mult_max = 0.0;
  double span_intensity_max = 0.0;
  if (score_prune) {
    for (const BinSpan& span : arena.spans) {
      mult_max = std::max(mult_max, static_cast<double>(span.multiplicity));
      span_intensity_max =
          std::max(span_intensity_max, static_cast<double>(span.intensity));
    }
  }

  for (const BinSpan& span : arena.spans) {
    const std::uint32_t begin = bin_offsets_[span.lo];
    const std::uint32_t end = bin_offsets_[span.hi];
    // Account as the per-peak walk would: a bin covered by k peaks counts
    // k visits and k× its postings, keeping cost_units() comparable —
    // but hoisted out of the posting loop instead of bumped per touch.
    work.bins_visited +=
        static_cast<std::uint64_t>(span.multiplicity) * (span.hi - span.lo);
    if (begin == end) continue;

    // Walks one contiguous slice of the span. Raw restrict pointers:
    // posting loads (from the CSR array, or from the slice's blocks
    // decoded into arena scratch — the scratch stays L1-hot, so the
    // scorecard's cache misses still dominate) cannot alias scorecard
    // stores, so the compiler keeps loop state in registers across slot
    // writes.
    const auto walk = [&](std::uint32_t slice_begin,
                          std::uint32_t slice_end) {
      work.postings_touched += static_cast<std::uint64_t>(span.multiplicity) *
                               (slice_end - slice_begin);
      const std::uint32_t* __restrict postings =
          posting_slice(slice_begin, slice_end, arena);
      const std::uint32_t count = slice_end - slice_begin;
      if (span.multiplicity == 1) {
        // Non-overlapping windows (the common case at ΔF = 0.05 /
        // r = 0.01): identical per-posting arithmetic to the reference
        // walk, but one contiguous slice instead of a loop per bin and one
        // interleaved scorecard slot instead of three parallel arrays.
        for (std::uint32_t i = 0; i < count; ++i) {
          const LocalPeptideId pep = postings[i];
          QueryArena::Slot& slot = slots[pep];
          if (slot.stamp != epoch) {
            slot.stamp = epoch;
            slot.count = 0;
            slot.intensity = 0.0f;
          }
          slot.intensity += span.intensity;
          if (++slot.count == threshold) arena.reached.push_back(pep);
        }
        return;
      }
      for (std::uint32_t i = 0; i < count; ++i) {
        const LocalPeptideId pep = postings[i];
        QueryArena::Slot& slot = slots[pep];
        if (slot.stamp != epoch) {
          slot.stamp = epoch;
          slot.count = 0;
          slot.intensity = 0.0f;
        }
        slot.intensity += span.intensity;
        const std::uint32_t before = slot.count;
        slot.count = before + span.multiplicity;
        if (before < threshold && slot.count >= threshold) {
          arena.reached.push_back(pep);
        }
      }
    };

    const std::uint32_t first_block = begin / codec::kBlockValues;
    const std::uint32_t last_block = (end - 1) / codec::kBlockValues;
    if (!mass_prune && !score_prune) {
      work.blocks_walked += last_block - first_block + 1;
      ++work.spans_walked;
      walk(begin, end);
      continue;
    }

    // Pruned walk: test each covering block's bound and walk maximal runs
    // of surviving blocks, so the decode granularity stays as coarse as
    // the unpruned path allows and survivors keep their walk order.
    std::uint32_t run_begin = begin;
    bool walked_any = false;
    for (std::uint32_t b = first_block; b <= last_block; ++b) {
      const auto seg_begin = static_cast<std::uint32_t>(std::max<std::uint64_t>(
          begin, std::uint64_t{b} * codec::kBlockValues));
      const auto seg_end = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          end, (std::uint64_t{b} + 1) * codec::kBlockValues));
      const BlockBound& bound = bounds_[b];
      bool skip = false;
      if (mass_prune && (static_cast<double>(bound.mass_hi) < window_lo ||
                         static_cast<double>(bound.mass_lo) > window_hi)) {
        // Every peptide in the block fails the emit-time precursor filter.
        skip = true;
      } else if (score_prune) {
        // Upper bound on any block peptide's final filter score: each of
        // its <= max_frags postings is touched at most once per walk,
        // adding <= mult_max to the count and <= span_intensity_max to
        // the intensity.
        const double count_bound = bound.max_frags * mult_max;
        const double intensity_bound = bound.max_frags * span_intensity_max;
        const double upper =
            std::lgamma(count_bound + 1.0) + std::log1p(intensity_bound);
        skip = upper + kScoreBoundSlack < score_floor;
      }
      if (skip) {
        ++work.blocks_pruned;
        if (run_begin < seg_begin) {
          walk(run_begin, seg_begin);
          walked_any = true;
        }
        run_begin = seg_end;
        continue;
      }
      ++work.blocks_walked;
    }
    if (run_begin < end) {
      walk(run_begin, end);
      walked_any = true;
    }
    if (walked_any) {
      ++work.spans_walked;
    } else {
      ++work.spans_pruned;
    }
  }
  emit_candidates(spectrum, params, out, work, arena);
}

void SlmIndex::query(const chem::Spectrum& spectrum,
                     const QueryParams& params, std::vector<Candidate>& out,
                     QueryWork& work) const {
  query(spectrum, params, out, work, internal_arena_);
}

void SlmIndex::query_reference(const chem::Spectrum& spectrum,
                               const QueryParams& params,
                               std::vector<Candidate>& out, QueryWork& work,
                               QueryArena& arena) const {
  arena.begin_query(store_->size());
  arena.ensure_reference();
  const auto threshold = static_cast<std::uint16_t>(
      std::max<std::uint32_t>(1, params.shared_peak_min));
  const MzBin tol_bins = binning_.tolerance_bins(params.fragment_tolerance);
  const MzBin last_bin = binning_.num_bins() - 1;

  // Faithful to the pre-refactor engine, including its freshly allocated
  // per-query crossing list (the arena only supplies the scorecard, which
  // the old engine kept inside the index).
  std::vector<LocalPeptideId> reached;
  for (std::size_t peak = 0; peak < spectrum.size(); ++peak) {
    const Mz mz = spectrum.mz(peak);
    if (!binning_.in_range(mz)) continue;
    ++work.peaks_processed;
    const float peak_intensity = spectrum.intensity(peak);
    const MzBin center = binning_.bin(mz);
    const MzBin lo = center > tol_bins ? center - tol_bins : 0;
    const MzBin hi = std::min<MzBin>(center + tol_bins, last_bin);
    for (MzBin b = lo; b <= hi; ++b) {
      ++work.bins_visited;
      const std::uint32_t begin = bin_offsets_[b];
      const std::uint32_t end = bin_offsets_[b + 1];
      // Per-bin decode (a packed block may be decoded once per covering
      // bin): wasteful on purpose — the reference walk optimizes for
      // being obviously faithful to the pre-batching engine, not speed.
      const std::uint32_t* postings = posting_slice(begin, end, arena);
      for (std::uint32_t i = 0; i < end - begin; ++i) {
        const LocalPeptideId pep = postings[i];
        ++work.postings_touched;
        if (!arena.ref_stamped(pep)) arena.ref_stamp(pep);
        arena.ref_intensity(pep) += peak_intensity;
        if (++arena.ref_count(pep) == threshold) reached.push_back(pep);
      }
    }
  }

  const bool filter_precursor =
      params.precursor_tolerance < std::numeric_limits<double>::infinity();
  const Mass query_mass = spectrum.precursor.neutral_mass;
  for (const LocalPeptideId pep : reached) {
    if (filter_precursor) {
      if (std::abs(store_->mass(pep) - query_mass) >
          params.precursor_tolerance) {
        continue;
      }
    }
    out.push_back(
        Candidate{pep, arena.ref_count(pep), arena.ref_intensity(pep)});
    ++work.candidates;
  }
}

std::uint64_t SlmIndex::memory_bytes() const noexcept {
  // Mapped indexes own no array heap: their bytes live in the page cache
  // and are charged to the file, not the process heap.
  return bin_offsets_storage_.capacity() * sizeof(std::uint32_t) +
         postings_storage_.capacity() * sizeof(LocalPeptideId) +
         blocks_storage_.capacity() * sizeof(codec::BlockMeta) +
         bounds_storage_.capacity() * sizeof(BlockBound) +
         packed_storage_.capacity() + internal_arena_.memory_bytes();
}

const std::uint32_t* SlmIndex::posting_slice(std::uint32_t begin,
                                             std::uint32_t end,
                                             QueryArena& arena) const {
  if (!packed_mode_) return postings_.data() + begin;
  if (begin == end) return arena.decoded.data();
  const std::size_t block_first = begin / codec::kBlockValues;
  const std::size_t block_count = (end - 1) / codec::kBlockValues -
                                  block_first + 1;
  const std::size_t needed = block_count * codec::kBlockValues;
  if (arena.decoded.size() < needed) arena.decoded.resize(needed);
  codec::decode_range(blocks_, packed_, posting_count_, begin, end,
                      arena.decoded.data());
  return arena.decoded.data() + (begin - block_first * codec::kBlockValues);
}

void SlmIndex::ensure_packed() const {
  if (packed_mode_ || packed_cached_) return;
  codec::encode(postings_, blocks_storage_, packed_storage_);
  blocks_ = blocks_storage_;
  packed_ = packed_storage_;
  packed_cached_ = true;
}

std::uint64_t SlmIndex::packed_posting_bytes() const {
  ensure_packed();
  return packed_.size() + blocks_.size() * sizeof(codec::BlockMeta);
}

void SlmIndex::compress_in_memory() {
  if (packed_mode_) return;
  ensure_packed();
  postings_storage_.clear();
  postings_storage_.shrink_to_fit();
  postings_ = {};
  packed_mode_ = true;
}

SlmIndex::SlmIndex(const PeptideStore& store,
                   const chem::ModificationSet& mods,
                   const IndexParams& params, std::nullptr_t)
    : store_(&store), mods_(&mods), params_(params),
      binning_(params.binning()) {}

namespace {

constexpr std::uint64_t padded8(std::uint64_t n) { return (n + 7) & ~7ull; }

}  // namespace

std::uint64_t SlmIndex::arrays_payload_size() const {
  ensure_packed();
  return 32 + padded8(bin_offsets_.size() * sizeof(std::uint32_t)) +
         padded8(blocks_.size() * sizeof(codec::BlockMeta)) +
         padded8(packed_.size()) +
         padded8(bounds_.size() * sizeof(BlockBound));
}

std::uint32_t SlmIndex::arrays_payload_crc() const {
  ensure_packed();
  LBE_CHECK(bounds_.size() == blocks_.size(),
            "block bounds out of step with the block directory");
  const std::uint64_t counts[4] = {bin_offsets_.size(), posting_count_,
                                   blocks_.size(), packed_.size()};
  std::uint64_t cursor = 0;
  std::uint32_t crc = 0;
  bin::crc32_padded(counts, sizeof(counts), cursor, crc);
  bin::crc32_padded(bin_offsets_.data(),
                    bin_offsets_.size() * sizeof(std::uint32_t), cursor, crc);
  bin::crc32_padded(blocks_.data(),
                    blocks_.size() * sizeof(codec::BlockMeta), cursor, crc);
  bin::crc32_padded(packed_.data(), packed_.size(), cursor, crc);
  bin::crc32_padded(bounds_.data(),
                    bounds_.size() * sizeof(BlockBound), cursor, crc);
  return crc;
}

void SlmIndex::write_arrays_payload(std::ostream& out) const {
  ensure_packed();
  LBE_CHECK(bounds_.size() == blocks_.size(),
            "block bounds out of step with the block directory");
  std::uint64_t cursor = 0;
  bin::write_pod(out, static_cast<std::uint64_t>(bin_offsets_.size()));
  bin::write_pod(out, posting_count_);
  bin::write_pod(out, static_cast<std::uint64_t>(blocks_.size()));
  bin::write_pod(out, static_cast<std::uint64_t>(packed_.size()));
  cursor += 32;
  bin::write_padded(out, bin_offsets_.data(),
                    bin_offsets_.size() * sizeof(std::uint32_t), cursor);
  bin::write_padded(out, blocks_.data(),
                    blocks_.size() * sizeof(codec::BlockMeta), cursor);
  bin::write_padded(out, packed_.data(), packed_.size(), cursor);
  bin::write_padded(out, bounds_.data(),
                    bounds_.size() * sizeof(BlockBound), cursor);
}

SlmIndex SlmIndex::parse_arrays_payload(
    bin::ByteReader& payload, const PeptideStore& store,
    const chem::ModificationSet& mods, const IndexParams& params,
    std::shared_ptr<const bin::MmapFile> keepalive) {
  namespace sz = serialize;
  const auto offsets_count = payload.read_pod<std::uint64_t>();
  const auto postings_count = payload.read_pod<std::uint64_t>();
  const auto block_count = payload.read_pod<std::uint64_t>();
  const auto packed_bytes = payload.read_pod<std::uint64_t>();
  sz::require(offsets_count <= bin::kMaxElements &&
                  postings_count <= bin::kMaxElements &&
                  block_count <= bin::kMaxElements &&
                  packed_bytes <= bin::kMaxSectionBytes,
              "implausible array count");
  const auto offsets_view = payload.view_array<std::uint32_t>(
      static_cast<std::size_t>(offsets_count));
  payload.align();
  const auto blocks_view = payload.view_array<codec::BlockMeta>(
      static_cast<std::size_t>(block_count));
  payload.align();
  const auto packed_view =
      payload.take(static_cast<std::size_t>(packed_bytes));
  payload.align();
  // v5: one BlockBound per directory block, trailing the packed stream.
  const auto bounds_view = payload.view_array<BlockBound>(
      static_cast<std::size_t>(block_count));
  payload.align();

  // Structural validation before any decode: the block directory must
  // tile the packed stream exactly and carry only legal encodings, and
  // every block bound must be a plausible (mass range, fragment cap) pair
  // — the pruning walk trusts them without further checks.
  codec::validate_blocks(blocks_view, postings_count, packed_bytes);
  for (const BlockBound& bound : bounds_view) {
    sz::require(bound.reserved == 0, "non-zero reserved block-bound field");
    sz::require(std::isfinite(bound.mass_lo) &&
                    std::isfinite(bound.mass_hi) &&
                    !(bound.mass_hi < bound.mass_lo),
                "invalid block mass bound");
    sz::require(bound.max_frags >= 1 && bound.max_frags <= postings_count,
                "implausible block fragment bound");
  }

  SlmIndex index(store, mods, params, nullptr);
  if (keepalive != nullptr) {
    index.bin_offsets_ = offsets_view;
    index.blocks_ = blocks_view;
    index.packed_ = packed_view;
    index.bounds_ = bounds_view;
    index.posting_count_ = postings_count;
    index.packed_mode_ = true;
    index.packed_cached_ = true;
    index.keepalive_ = std::move(keepalive);
  } else {
    // Eager load: decode back to the raw u32 array once, then query at
    // full resident speed with no decode in the walk.
    index.bin_offsets_storage_.assign(offsets_view.begin(),
                                      offsets_view.end());
    index.bounds_storage_.assign(bounds_view.begin(), bounds_view.end());
    index.postings_storage_.resize(
        static_cast<std::size_t>(block_count) * codec::kBlockValues);
    codec::decode_blocks(blocks_view, packed_view, postings_count, 0,
                         static_cast<std::size_t>(block_count),
                         index.postings_storage_.data());
    index.postings_storage_.resize(
        static_cast<std::size_t>(postings_count));
    index.bind_owned();
  }

  sz::require(index.bin_offsets_.size() ==
                  std::size_t{index.binning_.num_bins()} + 1,
              "bin count mismatch (different IndexParams?)");
  sz::require(!index.bin_offsets_.empty() &&
                  index.bin_offsets_.back() == postings_count,
              "postings size mismatch");
  for (std::size_t b = 1; b < index.bin_offsets_.size(); ++b) {
    sz::require(index.bin_offsets_[b] >= index.bin_offsets_[b - 1],
                "non-monotone bin offsets");
  }
  // Every decoded posting must be a valid store id BEFORE any query runs:
  // the scorecard indexes slots by posting with no bounds check. The
  // mapped path decodes once into scratch for exactly this validation —
  // queries re-decode per span — so corruption that survives the CRC
  // (a stale-but-valid file for a different store) still fails at first
  // touch, never mid-walk.
  if (index.packed_mode_) {
    std::vector<std::uint32_t> scratch(
        static_cast<std::size_t>(block_count) * codec::kBlockValues);
    codec::decode_blocks(blocks_view, packed_view, postings_count, 0,
                         static_cast<std::size_t>(block_count),
                         scratch.data());
    for (std::uint64_t i = 0; i < postings_count; ++i) {
      sz::require(scratch[static_cast<std::size_t>(i)] < store.size(),
                  "posting out of range");
    }
  } else {
    for (const LocalPeptideId id : index.postings_) {
      sz::require(id < store.size(), "posting out of range");
    }
  }
  return index;
}

void SlmIndex::save(std::ostream& out) const {
  namespace sz = serialize;
  std::uint64_t cursor = 0;
  sz::write_header(out, sz::Kind::kSlmIndex);
  cursor += sz::kHeaderBytes;
  {
    std::ostringstream payload;
    sz::write_index_params(payload, params_);
    bin::write_raw_section(out, cursor, sz::kSecParams, payload.str());
  }
  bin::write_raw_section_frame(out, cursor, sz::kSecArrays,
                               arrays_payload_size(), arrays_payload_crc());
  write_arrays_payload(out);
}

SlmIndex SlmIndex::load(std::istream& in, const PeptideStore& store,
                        const chem::ModificationSet& mods,
                        const IndexParams& params) {
  namespace sz = serialize;
  std::uint64_t cursor = 0;
  sz::read_header(in, sz::Kind::kSlmIndex);
  cursor += sz::kHeaderBytes;
  {
    std::istringstream payload(
        bin::read_raw_section(in, cursor, sz::kSecParams));
    const IndexParams stored = sz::read_index_params(payload);
    if (!sz::same_index_params(stored, params)) {
      throw IoError("index file was built with different IndexParams");
    }
  }
  const std::string payload =
      bin::read_raw_section(in, cursor, sz::kSecArrays);
  bin::ByteReader reader(std::as_bytes(std::span(payload)));
  SlmIndex index =
      parse_arrays_payload(reader, store, mods, params, nullptr);
  sz::require(reader.remaining() == 0, "index arrays trailing bytes");
  return index;
}

std::vector<std::uint32_t> SlmIndex::bin_occupancy() const {
  std::vector<std::uint32_t> occupancy(binning_.num_bins());
  for (MzBin b = 0; b < occupancy.size(); ++b) {
    occupancy[b] =
        static_cast<std::uint32_t>(bin_offsets_[b + 1] - bin_offsets_[b]);
  }
  return occupancy;
}

}  // namespace lbe::index
