#include "index/slm_index.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <istream>
#include <numeric>
#include <ostream>

#include "common/binary_io.hpp"
#include "common/error.hpp"

namespace lbe::index {

SlmIndex::SlmIndex(const PeptideStore& store,
                   const chem::ModificationSet& mods,
                   const IndexParams& params)
    : SlmIndex(store, mods, params, std::span<const LocalPeptideId>{}) {}

SlmIndex::SlmIndex(const PeptideStore& store,
                   const chem::ModificationSet& mods,
                   const IndexParams& params,
                   std::span<const LocalPeptideId> subset)
    : store_(&store), mods_(&mods), params_(params),
      binning_(params.binning()) {
  // Materialize the id list: empty subset means "all".
  std::vector<LocalPeptideId> ids;
  if (subset.empty()) {
    ids.resize(store.size());
    std::iota(ids.begin(), ids.end(), LocalPeptideId{0});
  } else {
    ids.assign(subset.begin(), subset.end());
    for (const LocalPeptideId id : ids) {
      LBE_CHECK(id < store.size(), "subset id out of range");
    }
  }

  // Pass 1: count postings per bin. (bin, id) pairs are never materialized;
  // two passes over the fragment generator trade CPU for peak memory, which
  // is the SLM-Transform design point (the paper's §V-B temporary-footprint
  // discussion is about engines that do materialize).
  const MzBin num_bins = binning_.num_bins();
  std::vector<std::uint64_t> counts(num_bins, 0);
  auto for_each_fragment = [&](LocalPeptideId id, auto&& fn) {
    const chem::Peptide peptide = store_->materialize(id);
    for (const auto& fragment :
         theospec::fragment_peptide(peptide, *mods_, params_.fragments)) {
      if (!binning_.in_range(fragment.mz)) continue;
      fn(binning_.bin(fragment.mz));
    }
  };
  for (const LocalPeptideId id : ids) {
    for_each_fragment(id, [&](MzBin bin) { ++counts[bin]; });
  }

  std::uint64_t running = 0;
  for (MzBin b = 0; b < num_bins; ++b) running += counts[b];
  LBE_CHECK(running < 0xFFFFFFFFull,
            "partition exceeds the 32-bit ion-index limit (paper §III-D): "
            "split the data over more ranks or enable chunking");

  bin_offsets_.assign(num_bins + 1, 0);
  std::uint32_t offset = 0;
  for (MzBin b = 0; b < num_bins; ++b) {
    bin_offsets_[b] = offset;
    offset += static_cast<std::uint32_t>(counts[b]);
  }
  bin_offsets_[num_bins] = offset;

  // Pass 2: fill postings via per-bin write cursors.
  postings_.assign(offset, 0);
  std::vector<std::uint32_t> cursor(bin_offsets_.begin(),
                                    bin_offsets_.end() - 1);
  for (const LocalPeptideId id : ids) {
    for_each_fragment(id, [&](MzBin bin) { postings_[cursor[bin]++] = id; });
  }

  // Secondary order inside each bin: parent precursor mass, then id — the
  // Fig. 1 sort that keeps precursor-window scans contiguous. Iterating ids
  // in input order already yields id order; re-sort by (mass, id).
  for (MzBin b = 0; b < num_bins; ++b) {
    const auto begin = postings_.begin() +
                       static_cast<std::ptrdiff_t>(bin_offsets_[b]);
    const auto end = postings_.begin() +
                     static_cast<std::ptrdiff_t>(bin_offsets_[b + 1]);
    std::sort(begin, end, [this](LocalPeptideId a, LocalPeptideId b2) {
      const Mass ma = store_->mass(a);
      const Mass mb = store_->mass(b2);
      if (ma != mb) return ma < mb;
      return a < b2;
    });
  }
}

void SlmIndex::query(const chem::Spectrum& spectrum,
                     const QueryParams& params, std::vector<Candidate>& out,
                     QueryWork& work) const {
  const std::size_t n = store_->size();
  if (stamp_.size() != n) {
    stamp_.assign(n, 0);
    count_.assign(n, 0);
    intensity_.assign(n, 0.0f);
    epoch_ = 0;
  }
  if (++epoch_ == 0) {  // 32-bit wrap: restamp and continue
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }

  const std::uint16_t threshold =
      static_cast<std::uint16_t>(std::max<std::uint32_t>(
          1, params.shared_peak_min));
  const MzBin tol_bins = binning_.tolerance_bins(params.fragment_tolerance);
  const MzBin last_bin = binning_.num_bins() - 1;

  std::vector<LocalPeptideId> reached;  // crossed the threshold
  for (std::size_t peak = 0; peak < spectrum.size(); ++peak) {
    const Mz mz = spectrum.mz(peak);
    if (!binning_.in_range(mz)) continue;
    ++work.peaks_processed;
    const float peak_intensity = spectrum.intensity(peak);
    const MzBin center = binning_.bin(mz);
    const MzBin lo = center > tol_bins ? center - tol_bins : 0;
    const MzBin hi = std::min<MzBin>(center + tol_bins, last_bin);
    for (MzBin b = lo; b <= hi; ++b) {
      ++work.bins_visited;
      const std::uint32_t begin = bin_offsets_[b];
      const std::uint32_t end = bin_offsets_[b + 1];
      for (std::uint32_t i = begin; i < end; ++i) {
        const LocalPeptideId pep = postings_[i];
        ++work.postings_touched;
        if (stamp_[pep] != epoch_) {
          stamp_[pep] = epoch_;
          count_[pep] = 0;
          intensity_[pep] = 0.0f;
        }
        intensity_[pep] += peak_intensity;
        if (++count_[pep] == threshold) reached.push_back(pep);
      }
    }
  }

  // Finalize candidates; apply the precursor window unless open search.
  const bool filter_precursor =
      params.precursor_tolerance < std::numeric_limits<double>::infinity();
  const Mass query_mass = spectrum.precursor.neutral_mass;
  for (const LocalPeptideId pep : reached) {
    if (filter_precursor) {
      if (std::abs(store_->mass(pep) - query_mass) >
          params.precursor_tolerance) {
        continue;
      }
    }
    out.push_back(Candidate{pep, count_[pep], intensity_[pep]});
    ++work.candidates;
  }
}

std::uint64_t SlmIndex::memory_bytes() const noexcept {
  return bin_offsets_.capacity() * sizeof(std::uint32_t) +
         postings_.capacity() * sizeof(LocalPeptideId) +
         stamp_.capacity() * sizeof(std::uint32_t) +
         count_.capacity() * sizeof(std::uint16_t) +
         intensity_.capacity() * sizeof(float);
}

SlmIndex::SlmIndex(const PeptideStore& store,
                   const chem::ModificationSet& mods,
                   const IndexParams& params, std::nullptr_t)
    : store_(&store), mods_(&mods), params_(params),
      binning_(params.binning()) {}

void SlmIndex::save(std::ostream& out) const {
  bin::write_vector(out, bin_offsets_);
  bin::write_vector(out, postings_);
}

SlmIndex SlmIndex::load(std::istream& in, const PeptideStore& store,
                        const chem::ModificationSet& mods,
                        const IndexParams& params) {
  SlmIndex index(store, mods, params, nullptr);
  index.bin_offsets_ = bin::read_vector<std::uint32_t>(in);
  index.postings_ = bin::read_vector<LocalPeptideId>(in);
  LBE_CHECK(index.bin_offsets_.size() ==
                std::size_t{index.binning_.num_bins()} + 1,
            "corrupt index: bin count mismatch (different IndexParams?)");
  LBE_CHECK(!index.bin_offsets_.empty() &&
                index.bin_offsets_.back() == index.postings_.size(),
            "corrupt index: postings size mismatch");
  for (std::size_t b = 1; b < index.bin_offsets_.size(); ++b) {
    LBE_CHECK(index.bin_offsets_[b] >= index.bin_offsets_[b - 1],
              "corrupt index: non-monotone bin offsets");
  }
  for (const LocalPeptideId id : index.postings_) {
    LBE_CHECK(id < store.size(), "corrupt index: posting out of range");
  }
  return index;
}

std::vector<std::uint32_t> SlmIndex::bin_occupancy() const {
  std::vector<std::uint32_t> occupancy(binning_.num_bins());
  for (MzBin b = 0; b < occupancy.size(); ++b) {
    occupancy[b] =
        static_cast<std::uint32_t>(bin_offsets_[b + 1] - bin_offsets_[b]);
  }
  return occupancy;
}

}  // namespace lbe::index
