#include "index/chunked_index.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/binary_io.hpp"
#include "common/error.hpp"
#include "index/serialize.hpp"

namespace lbe::index {

ChunkedIndex::ChunkedIndex(PeptideStore store,
                           const chem::ModificationSet& mods,
                           const IndexParams& index_params,
                           const ChunkingParams& chunking)
    : store_(std::move(store)), mods_(&mods), index_params_(index_params) {
  const std::size_t n = store_.size();
  if (n == 0) return;

  const std::vector<LocalPeptideId> by_mass = store_.ids_by_mass();
  const std::size_t chunk_cap =
      chunking.max_chunk_entries == 0 ? n : chunking.max_chunk_entries;
  LBE_CHECK(chunk_cap > 0, "chunk capacity must be positive");

  for (std::size_t begin = 0; begin < n; begin += chunk_cap) {
    const std::size_t end = std::min(begin + chunk_cap, n);
    const std::span<const LocalPeptideId> subset(by_mass.data() + begin,
                                                 end - begin);
    Chunk chunk;
    chunk.mass_lo = store_.mass(subset.front());
    chunk.mass_hi = store_.mass(subset.back());
    chunk.index =
        std::make_unique<SlmIndex>(store_, mods, index_params, subset);
    chunks_.push_back(std::move(chunk));
  }
}

std::uint64_t ChunkedIndex::num_postings() const noexcept {
  std::uint64_t total = 0;
  for (const auto& chunk : chunks_) total += chunk.index->num_postings();
  return total;
}

std::pair<Mass, Mass> ChunkedIndex::chunk_mass_range(std::size_t c) const {
  LBE_CHECK(c < chunks_.size(), "chunk id out of range");
  return {chunks_[c].mass_lo, chunks_[c].mass_hi};
}

std::size_t ChunkedIndex::chunks_for_window(Mass query_mass,
                                            double tolerance) const {
  if (!(tolerance < std::numeric_limits<double>::infinity())) {
    return chunks_.size();
  }
  std::size_t touched = 0;
  for (const auto& chunk : chunks_) {
    if (chunk.mass_lo - tolerance <= query_mass &&
        query_mass <= chunk.mass_hi + tolerance) {
      ++touched;
    }
  }
  return touched;
}

void ChunkedIndex::query(const chem::Spectrum& spectrum,
                         const QueryParams& params,
                         std::vector<Candidate>& out, QueryWork& work,
                         QueryArena& arena) const {
  const bool open =
      !(params.precursor_tolerance < std::numeric_limits<double>::infinity());
  const Mass query_mass = spectrum.precursor.neutral_mass;
  // Spans depend only on the spectrum, the tolerance, and the binning —
  // identical for every chunk (all share index_params_) — so the first
  // intersecting chunk builds them and the rest reuse (the per-chunk
  // epoch bump in query_impl leaves arena.spans untouched).
  bool spans_built = false;
  for (const auto& chunk : chunks_) {
    if (!open) {
      if (chunk.mass_lo - params.precursor_tolerance > query_mass ||
          query_mass > chunk.mass_hi + params.precursor_tolerance) {
        continue;
      }
    }
    chunk.index->query_impl(spectrum, params, out, work, arena,
                            /*rebuild_spans=*/!spans_built);
    spans_built = true;
  }
}

void ChunkedIndex::query(const chem::Spectrum& spectrum,
                         const QueryParams& params,
                         std::vector<Candidate>& out, QueryWork& work) const {
  query(spectrum, params, out, work, internal_arena_);
}

std::uint64_t ChunkedIndex::memory_bytes() const noexcept {
  std::uint64_t total = store_.memory_bytes() + internal_arena_.memory_bytes();
  for (const auto& chunk : chunks_) total += chunk.index->memory_bytes();
  return total;
}

ChunkedIndex::ChunkedIndex(PeptideStore store,
                           const chem::ModificationSet& mods,
                           const IndexParams& index_params, std::nullptr_t)
    : store_(std::move(store)), mods_(&mods), index_params_(index_params) {}

void ChunkedIndex::save(std::ostream& out) const {
  namespace sz = serialize;
  sz::write_header(out, sz::Kind::kChunkedIndex);
  {
    std::ostringstream payload;
    sz::write_index_params(payload, index_params_);
    bin::write_pod(payload, static_cast<std::uint64_t>(chunks_.size()));
    bin::write_section(out, sz::kSecParams, payload.str());
  }
  // The store nests as a complete component stream (own header + CRC).
  store_.save(out);
  for (const auto& chunk : chunks_) {
    std::ostringstream payload;
    bin::write_pod(payload, chunk.mass_lo);
    bin::write_pod(payload, chunk.mass_hi);
    chunk.index->save_arrays(payload);
    bin::write_section(out, sz::kSecChunk, payload.str());
  }
}

std::unique_ptr<ChunkedIndex> ChunkedIndex::load(
    std::istream& in, const chem::ModificationSet& mods,
    const IndexParams& index_params) {
  namespace sz = serialize;
  sz::read_header(in, sz::Kind::kChunkedIndex);
  std::uint64_t chunk_count = 0;
  {
    std::istringstream payload(bin::read_section(in, sz::kSecParams));
    const IndexParams stored = sz::read_index_params(payload);
    if (!sz::same_index_params(stored, index_params)) {
      throw IoError("index file was built with different IndexParams");
    }
    chunk_count = bin::read_pod<std::uint64_t>(payload);
    sz::require(chunk_count <= bin::kMaxElements, "implausible chunk count");
  }

  PeptideStore store = PeptideStore::load(in, &mods);
  // Adopt via the non-building constructor; chunks reference the member
  // store, whose address is stable behind the unique_ptr.
  std::unique_ptr<ChunkedIndex> index(
      new ChunkedIndex(std::move(store), mods, index_params, nullptr));
  for (std::uint64_t c = 0; c < chunk_count; ++c) {
    std::istringstream payload(bin::read_section(in, sz::kSecChunk));
    Chunk chunk;
    chunk.mass_lo = bin::read_pod<Mass>(payload);
    chunk.mass_hi = bin::read_pod<Mass>(payload);
    chunk.index = std::make_unique<SlmIndex>(SlmIndex::load_arrays(
        payload, index->store_, mods, index_params));
    index->chunks_.push_back(std::move(chunk));
  }
  return index;
}

void ChunkedIndex::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open index file for writing: " + path);
  save(out);
  if (!out) throw IoError("index write failed: " + path);
}

std::unique_ptr<ChunkedIndex> ChunkedIndex::load_file(
    const std::string& path, const chem::ModificationSet& mods,
    const IndexParams& index_params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open index file: " + path);
  return load(in, mods, index_params);
}

std::vector<std::uint32_t> ChunkedIndex::bin_occupancy() const {
  std::vector<std::uint32_t> total(index_params_.binning().num_bins(), 0);
  for (const auto& chunk : chunks_) {
    const auto occupancy = chunk.index->bin_occupancy();
    for (std::size_t b = 0; b < occupancy.size(); ++b) {
      total[b] += occupancy[b];
    }
  }
  return total;
}

}  // namespace lbe::index
