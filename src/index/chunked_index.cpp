#include "index/chunked_index.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <functional>
#include <limits>
#include <sstream>

#include "common/binary_io.hpp"
#include "common/error.hpp"
#include "common/mmap_file.hpp"
#include "index/serialize.hpp"

namespace lbe::index {

namespace {

/// One on-disk chunk-directory entry (format v3). The directory is written
/// — and CRC-validated — eagerly, so routing (which chunks a precursor
/// window touches) never depends on unvalidated bytes; the payload extent
/// it points at is checked against `crc` on first touch.
struct ChunkDirEntry {
  Mass mass_lo = 0.0;
  Mass mass_hi = 0.0;
  std::uint64_t offset = 0;  ///< absolute file offset, 8-aligned
  std::uint64_t size = 0;    ///< payload bytes, multiple of 8
  std::uint32_t crc = 0;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(ChunkDirEntry) == 40);

}  // namespace

ChunkedIndex::ChunkedIndex(PeptideStore store,
                           const chem::ModificationSet& mods,
                           const IndexParams& index_params,
                           const ChunkingParams& chunking)
    : store_(std::move(store)), mods_(&mods), index_params_(index_params) {
  const std::size_t n = store_.size();
  if (n == 0) {
    publish_all_chunks();
    return;
  }

  const std::vector<LocalPeptideId> by_mass = store_.ids_by_mass();
  const std::size_t chunk_cap =
      chunking.max_chunk_entries == 0 ? n : chunking.max_chunk_entries;
  LBE_CHECK(chunk_cap > 0, "chunk capacity must be positive");

  for (std::size_t begin = 0; begin < n; begin += chunk_cap) {
    const std::size_t end = std::min(begin + chunk_cap, n);
    const std::span<const LocalPeptideId> subset(by_mass.data() + begin,
                                                 end - begin);
    Chunk chunk;
    chunk.mass_lo = store_.mass(subset.front());
    chunk.mass_hi = store_.mass(subset.back());
    chunk.index =
        std::make_unique<SlmIndex>(store_, mods, index_params, subset);
    chunks_.push_back(std::move(chunk));
  }
  publish_all_chunks();
}

void ChunkedIndex::publish_all_chunks() noexcept {
  live_ = std::vector<std::atomic<const SlmIndex*>>(chunks_.size());
  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    live_[c].store(chunks_[c].index.get(), std::memory_order_release);
  }
}

const SlmIndex& ChunkedIndex::chunk_index(std::size_t c) const {
  const SlmIndex* live = live_[c].load(std::memory_order_acquire);
  if (live != nullptr) return *live;
  return materialize_chunk(c);
}

const SlmIndex& ChunkedIndex::materialize_chunk(std::size_t c) const {
  std::lock_guard<std::mutex> lock(materialize_mutex_);
  if (const SlmIndex* live = live_[c].load(std::memory_order_relaxed)) {
    return *live;  // another thread won the race
  }
  const Chunk& chunk = chunks_[c];
  LBE_CHECK(mapping_ != nullptr, "cold chunk without a mapping");
  // First touch: CRC the extent, then bind spans in place. A corrupt
  // payload throws here — the chunk stays cold and retriable, and no
  // partially-validated arrays are ever published.
  const auto payload =
      mapping_->bytes().subspan(static_cast<std::size_t>(chunk.extent_offset),
                                static_cast<std::size_t>(chunk.extent_size));
  if (bin::crc32(payload.data(), payload.size()) != chunk.extent_crc) {
    throw IoError("mapped read failed: chunk payload checksum mismatch in " +
                  mapping_->path() + " (corrupt file?)");
  }
  bin::ByteReader reader(payload);
  chunk.index = std::make_unique<SlmIndex>(SlmIndex::parse_arrays_payload(
      reader, store_, *mods_, index_params_, mapping_));
  serialize::require(reader.remaining() == 0, "chunk payload trailing bytes");
  live_[c].store(chunk.index.get(), std::memory_order_release);
  return *chunk.index;
}

std::uint64_t ChunkedIndex::num_postings() const {
  std::uint64_t total = 0;
  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    total += chunk_index(c).num_postings();
  }
  return total;
}

std::uint64_t ChunkedIndex::packed_posting_bytes() const {
  std::uint64_t total = 0;
  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    total += chunk_index(c).packed_posting_bytes();
  }
  return total;
}

std::size_t ChunkedIndex::num_chunks_loaded() const noexcept {
  std::size_t loaded = 0;
  for (const auto& live : live_) {
    if (live.load(std::memory_order_acquire) != nullptr) ++loaded;
  }
  return loaded;
}

std::pair<Mass, Mass> ChunkedIndex::chunk_mass_range(std::size_t c) const {
  LBE_CHECK(c < chunks_.size(), "chunk id out of range");
  return {chunks_[c].mass_lo, chunks_[c].mass_hi};
}

std::size_t ChunkedIndex::chunks_for_window(Mass query_mass,
                                            double tolerance) const {
  if (!(tolerance < std::numeric_limits<double>::infinity())) {
    return chunks_.size();
  }
  std::size_t touched = 0;
  for (const auto& chunk : chunks_) {
    if (chunk.mass_lo - tolerance <= query_mass &&
        query_mass <= chunk.mass_hi + tolerance) {
      ++touched;
    }
  }
  return touched;
}

namespace {

/// Lower bound on the final K-th reported filter score, computed from the
/// candidates appended since `start` — all final, because chunks partition
/// peptides by mass, so a completed chunk's candidates never change.
/// Returns -inf until K candidates exist. Scores use the exact arithmetic
/// the engine ranks with (candidate_filter_score), so the floor can never
/// overtake a candidate the engine would keep.
double prune_score_floor(const std::vector<Candidate>& out, std::size_t start,
                         std::uint32_t top_k, std::vector<double>& scratch) {
  const std::size_t n = out.size() - start;
  if (n < top_k) return -std::numeric_limits<double>::infinity();
  scratch.clear();
  scratch.reserve(n);
  for (std::size_t i = start; i < out.size(); ++i) {
    scratch.push_back(candidate_filter_score(
        out[i].shared_peaks, static_cast<double>(out[i].matched_intensity)));
  }
  std::nth_element(scratch.begin(),
                   scratch.begin() + static_cast<std::ptrdiff_t>(top_k - 1),
                   scratch.end(), std::greater<double>());
  return scratch[top_k - 1];
}

}  // namespace

void ChunkedIndex::query(const chem::Spectrum& spectrum,
                         const QueryParams& params,
                         std::vector<Candidate>& out, QueryWork& work,
                         QueryArena& arena) const {
  const bool open =
      !(params.precursor_tolerance < std::numeric_limits<double>::infinity());
  const Mass query_mass = spectrum.precursor.neutral_mass;
  // Spans depend only on the spectrum, the tolerance, and the binning —
  // identical for every chunk (all share index_params_) — so the first
  // intersecting chunk builds them and the rest reuse (the per-chunk
  // epoch bump in query_impl leaves arena.spans untouched).
  const std::size_t out_start = out.size();
  const bool score_prune = params.prune_blocks && params.prune_top_k > 0;
  double score_floor = -std::numeric_limits<double>::infinity();
  bool spans_built = false;
  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    const Chunk& chunk = chunks_[c];
    if (!open) {
      if (chunk.mass_lo - params.precursor_tolerance > query_mass ||
          query_mass > chunk.mass_hi + params.precursor_tolerance) {
        continue;
      }
    }
    if (score_prune && spans_built) {
      score_floor = prune_score_floor(out, out_start, params.prune_top_k,
                                      arena.prune_scores);
    }
    chunk_index(c).query_impl(spectrum, params, out, work, arena,
                              /*rebuild_spans=*/!spans_built, score_floor);
    spans_built = true;
  }
}

void ChunkedIndex::query(const chem::Spectrum& spectrum,
                         const QueryParams& params,
                         std::vector<Candidate>& out, QueryWork& work) const {
  query(spectrum, params, out, work, internal_arena_);
}

std::uint64_t ChunkedIndex::memory_bytes() const noexcept {
  std::uint64_t total = store_.memory_bytes() + internal_arena_.memory_bytes();
  for (const auto& live : live_) {
    if (const SlmIndex* index = live.load(std::memory_order_acquire)) {
      total += index->memory_bytes();
    }
  }
  return total;
}

ChunkedIndex::ChunkedIndex(PeptideStore store,
                           const chem::ModificationSet& mods,
                           const IndexParams& index_params, std::nullptr_t)
    : store_(std::move(store)), mods_(&mods), index_params_(index_params) {}

void ChunkedIndex::save(std::ostream& out) const {
  namespace sz = serialize;
  std::uint64_t cursor = 0;
  sz::write_header(out, sz::Kind::kChunkedIndex);
  cursor += sz::kHeaderBytes;
  {
    std::ostringstream payload;
    sz::write_index_params(payload, index_params_);
    bin::write_pod(payload, static_cast<std::uint64_t>(chunks_.size()));
    bin::write_raw_section(out, cursor, sz::kSecParams, payload.str());
  }
  // The store nests as a complete component stream (own header + CRC).
  store_.save(out, cursor);

  // Chunk directory first, payloads after: every payload's extent and CRC
  // is computable without materializing it, so the directory — which the
  // lazy loader needs before any payload — leads. Saving a mapped index
  // materializes every chunk (chunk_index), which also re-validates it.
  const std::uint64_t dir_bytes = chunks_.size() * sizeof(ChunkDirEntry);
  std::uint64_t payload_cursor =
      cursor + bin::raw_section_span(cursor, dir_bytes);
  std::ostringstream dir;
  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    const SlmIndex& index = chunk_index(c);
    ChunkDirEntry entry;
    entry.mass_lo = chunks_[c].mass_lo;
    entry.mass_hi = chunks_[c].mass_hi;
    entry.offset = payload_cursor;
    entry.size = index.arrays_payload_size();
    entry.crc = index.arrays_payload_crc();
    bin::write_pod(dir, entry);
    payload_cursor += entry.size;
  }
  bin::write_raw_section(out, cursor, sz::kSecChunkDir, dir.str());
  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    const SlmIndex& index = chunk_index(c);
    index.write_arrays_payload(out);
    cursor += index.arrays_payload_size();
  }
  LBE_CHECK(cursor == payload_cursor, "chunk directory extent drift");
}

namespace {

/// Shared directory-entry validation: extents must tile the payload region
/// exactly so no byte of the file escapes a validated region.
void validate_dir_entry(const ChunkDirEntry& entry, std::uint64_t& expected,
                        std::uint64_t file_size_or_zero) {
  namespace sz = serialize;
  sz::require(entry.offset == expected, "chunk extent out of order");
  sz::require(entry.offset % 8 == 0, "misaligned chunk extent");
  // A v4 arrays payload is at least its 32-byte count header.
  sz::require(entry.size % 8 == 0 && entry.size >= 32 &&
                  entry.size <= bin::kMaxSectionBytes,
              "implausible chunk extent size");
  sz::require(!(entry.mass_hi < entry.mass_lo), "inverted chunk mass range");
  sz::require(entry.reserved == 0, "non-zero reserved directory field");
  expected = entry.offset + entry.size;
  if (file_size_or_zero != 0) {
    sz::require(expected <= file_size_or_zero,
                "chunk extent past end of file");
  }
}

}  // namespace

std::unique_ptr<ChunkedIndex> ChunkedIndex::load(
    std::istream& in, const chem::ModificationSet& mods,
    const IndexParams& index_params) {
  namespace sz = serialize;
  std::uint64_t cursor = 0;
  sz::read_header(in, sz::Kind::kChunkedIndex);
  cursor += sz::kHeaderBytes;
  std::uint64_t chunk_count = 0;
  {
    std::istringstream payload(
        bin::read_raw_section(in, cursor, sz::kSecParams));
    const IndexParams stored = sz::read_index_params(payload);
    if (!sz::same_index_params(stored, index_params)) {
      throw IoError("index file was built with different IndexParams");
    }
    chunk_count = bin::read_pod<std::uint64_t>(payload);
    sz::require(chunk_count <= bin::kMaxElements, "implausible chunk count");
  }

  PeptideStore store = PeptideStore::load(in, &mods, cursor);
  // Adopt via the non-building constructor; chunks reference the member
  // store, whose address is stable behind the unique_ptr.
  std::unique_ptr<ChunkedIndex> index(
      new ChunkedIndex(std::move(store), mods, index_params, nullptr));

  const std::string dir_payload =
      bin::read_raw_section(in, cursor, sz::kSecChunkDir);
  sz::require(dir_payload.size() == chunk_count * sizeof(ChunkDirEntry),
              "chunk directory size mismatch");
  bin::ByteReader dir(std::as_bytes(std::span(dir_payload)));
  std::uint64_t expected_offset = cursor;
  for (std::uint64_t c = 0; c < chunk_count; ++c) {
    const auto entry = dir.read_pod<ChunkDirEntry>();
    validate_dir_entry(entry, expected_offset, 0);

    const std::string payload = bin::read_exact(in, entry.size);
    cursor += entry.size;
    if (bin::crc32(payload) != entry.crc) {
      throw IoError("binary read failed: chunk payload checksum mismatch "
                    "(corrupt file?)");
    }
    bin::ByteReader reader(std::as_bytes(std::span(payload)));
    Chunk chunk;
    chunk.mass_lo = entry.mass_lo;
    chunk.mass_hi = entry.mass_hi;
    chunk.index = std::make_unique<SlmIndex>(SlmIndex::parse_arrays_payload(
        reader, index->store_, mods, index_params, nullptr));
    sz::require(reader.remaining() == 0, "chunk payload trailing bytes");
    index->chunks_.push_back(std::move(chunk));
  }
  // Same end-of-data discipline as map_file: nothing may follow the last
  // chunk extent, or the two load modes would disagree on validity.
  sz::require(in.peek() == std::istream::traits_type::eof(),
              "trailing bytes after the last chunk extent");
  index->publish_all_chunks();
  return index;
}

std::unique_ptr<ChunkedIndex> ChunkedIndex::map_file(
    const std::string& path, const chem::ModificationSet& mods,
    const IndexParams& index_params) {
  namespace sz = serialize;
  std::shared_ptr<const bin::MmapFile> map = bin::MmapFile::open(path);
  bin::ByteReader reader(map->bytes());
  sz::read_header_mapped(reader, sz::Kind::kChunkedIndex);
  std::uint64_t chunk_count = 0;
  {
    const auto params_bytes = bin::read_raw_section(reader, sz::kSecParams);
    std::istringstream payload(std::string(
        reinterpret_cast<const char*>(params_bytes.data()),
        params_bytes.size()));
    const IndexParams stored = sz::read_index_params(payload);
    if (!sz::same_index_params(stored, index_params)) {
      throw IoError("index file was built with different IndexParams");
    }
    chunk_count = bin::read_pod<std::uint64_t>(payload);
    sz::require(chunk_count <= bin::kMaxElements, "implausible chunk count");
  }

  PeptideStore store = PeptideStore::bind_mapped(reader, &mods, map);
  std::unique_ptr<ChunkedIndex> index(
      new ChunkedIndex(std::move(store), mods, index_params, nullptr));
  index->mapping_ = map;

  const auto dir_bytes = bin::read_raw_section(reader, sz::kSecChunkDir);
  sz::require(dir_bytes.size() == chunk_count * sizeof(ChunkDirEntry),
              "chunk directory size mismatch");
  bin::ByteReader dir(dir_bytes);
  std::uint64_t expected_offset = reader.offset();
  for (std::uint64_t c = 0; c < chunk_count; ++c) {
    const auto entry = dir.read_pod<ChunkDirEntry>();
    validate_dir_entry(entry, expected_offset, map->size());
    Chunk chunk;
    chunk.mass_lo = entry.mass_lo;
    chunk.mass_hi = entry.mass_hi;
    chunk.extent_offset = entry.offset;
    chunk.extent_size = entry.size;
    chunk.extent_crc = entry.crc;
    index->chunks_.push_back(std::move(chunk));
  }
  // The extents must account for the whole remainder of the file: nothing
  // may hide past the last chunk.
  sz::require(expected_offset == map->size(),
              "trailing bytes after the last chunk extent");
  index->live_ =
      std::vector<std::atomic<const SlmIndex*>>(index->chunks_.size());
  return index;
}

void ChunkedIndex::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open index file for writing: " + path);
  save(out);
  if (!out) throw IoError("index write failed: " + path);
}

std::unique_ptr<ChunkedIndex> ChunkedIndex::load_file(
    const std::string& path, const chem::ModificationSet& mods,
    const IndexParams& index_params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open index file: " + path);
  return load(in, mods, index_params);
}

std::vector<std::uint64_t> ChunkedIndex::bin_occupancy() const {
  std::vector<std::uint64_t> total(index_params_.binning().num_bins(), 0);
  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    const auto occupancy = chunk_index(c).bin_occupancy();
    for (std::size_t b = 0; b < occupancy.size(); ++b) {
      total[b] += occupancy[b];
    }
  }
  return total;
}

const std::vector<std::uint64_t>& ChunkedIndex::occupancy_prefix() const {
  std::call_once(occupancy_once_, [&] {
    const auto occupancy = bin_occupancy();
    occupancy_prefix_.assign(occupancy.size() + 1, 0);
    for (std::size_t b = 0; b < occupancy.size(); ++b) {
      occupancy_prefix_[b + 1] = occupancy_prefix_[b] + occupancy[b];
    }
  });
  return occupancy_prefix_;
}

}  // namespace lbe::index
