// On-disk index format — the paper's "partition once, search many" split.
//
// LBE builds the clustered, partitioned database up front so construction
// cost amortizes over query workloads (§IV); HiCOPS makes the same split
// explicit with persistent per-node partial indexes. This header defines
// the versioned, checksummed container every index component serializes
// through, plus the `IndexBundle` that captures one full per-rank index set
// together with the parameters it was built under, so `lbectl search
// --index` can warm-start instead of re-digesting and re-fragmenting.
//
// Layout (all little-endian, via common/binary_io):
//
//   file   := header section*
//   header := [magic u32 "LBEX"][format version u32][kind u32]
//   section:= [pad to 8][tag u32][payload size u64][crc32 u32][payload]
//
// Since format v3, component-file sections are 8-byte aligned at the file
// level ("raw" sections, binary_io): the 16-byte frame starts on an
// 8-byte boundary, so the payload does too, and every array inside a
// payload is padded to 8 — which is what lets the warm-start path mmap a
// rank file and view postings/offsets/columns in place instead of copying
// them (common/mmap_file.hpp). A chunked-index file additionally carries a
// chunk *directory* (mass range + file extent + CRC per chunk) so chunk
// payloads can be validated and materialized lazily, on first query touch.
// The manifest keeps the unaligned v2-style section framing — it is tiny
// and never mapped.
//
// Every payload is CRC-32 checked on read (eager sections at load, lazy
// chunk extents on first touch) and alignment padding is verified zero; a
// flipped bit anywhere raises IoError instead of corrupting a search.
// Components nest as complete streams (a chunked-index file embeds a full
// peptide-store stream), so each layer re-validates independently. Version
// bumps are strict: readers reject any version they were not built for —
// regenerate indexes with `lbectl prepare` rather than migrating in place.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/lbe_layer.hpp"
#include "index/chunked_index.hpp"

namespace lbe::bin {
class ByteReader;
}  // namespace lbe::bin

namespace lbe::index {

namespace serialize {

/// "LBEX" (little-endian) — shared by every index component file.
inline constexpr std::uint32_t kMagic = 0x5845424Cu;

/// Bumped on ANY layout change; version 1 was the pre-checksum format,
/// version 2 the streamed-vector layout. Version 3 stores every raw array
/// (postings, bin offsets, peptide-store columns) 8-byte aligned at an
/// offset-addressable extent so a warm start can bind them straight out of
/// an mmap (common/mmap_file.hpp) instead of copying them into vectors,
/// and moves per-chunk metadata into an eagerly-validated chunk directory
/// so chunks can be materialized lazily, on first query touch. Version 4
/// replaces each chunk's raw u32 posting array with bit-packed
/// frame-of-reference blocks plus a per-block directory
/// (index/posting_codec.hpp): eager loads decode back to u32 once at
/// parse, mapped loads bind the packed extents in place and decode spans
/// at query time through the runtime-selected scalar/SSE4.1/AVX2 kernel.
/// Version 5 appends per-block bound metadata (BlockBound: precursor-mass
/// range + max per-peptide fragment count, one record per 128-posting
/// codec block) to each chunk's arrays payload, so the span walk can skip
/// blocks that cannot contribute a reportable candidate (block-max
/// pruning); bounds are validated at parse and bound in both eager and
/// mapped loads.
inline constexpr std::uint32_t kFormatVersion = 5;

/// What a stream claims to contain; read_header rejects mismatches so a
/// rank file can never be mistaken for a manifest.
enum class Kind : std::uint32_t {
  kPeptideStore = 1,
  kSlmIndex = 2,
  kChunkedIndex = 3,
  kMappingTable = 4,
  kManifest = 5,
};

// Section tags (unique per enclosing kind, not globally).
inline constexpr std::uint32_t kSecParams = 0x01;
inline constexpr std::uint32_t kSecColumns = 0x02;
inline constexpr std::uint32_t kSecArrays = 0x03;
inline constexpr std::uint32_t kSecChunk = 0x04;
inline constexpr std::uint32_t kSecMapping = 0x05;
inline constexpr std::uint32_t kSecLbeParams = 0x06;
/// v3 chunk directory: per chunk {mass range, file extent, payload CRC}.
/// Validated eagerly at load so routing decisions (which chunks a precursor
/// window touches) never depend on unvalidated bytes; the chunk payloads it
/// points at are CRC-checked lazily, on first touch.
inline constexpr std::uint32_t kSecChunkDir = 0x07;

/// Bytes write_header emits (three u32 fields).
inline constexpr std::uint64_t kHeaderBytes = 12;

/// Refinement of IoError for a well-formed header whose format version is
/// not the one this build reads. Version bumps are strict (no in-place
/// migration), but a *stale* bundle is not a *corrupt* one: the warm-start
/// path catches exactly this type, warns, and rebuilds from the plan —
/// the PR 3 plan-mismatch semantics — while every other IoError stays
/// fatal, because a bundle the user pointed at must not be silently
/// ignored.
class FormatVersionError : public IoError {
 public:
  explicit FormatVersionError(const std::string& msg) : IoError(msg) {}
};

void write_header(std::ostream& out, Kind kind);

/// Throws IoError on bad magic or wrong kind, FormatVersionError on an
/// unsupported format version.
void read_header(std::istream& in, Kind expected);

/// Mapped twin of read_header, consuming from a byte cursor.
void read_header_mapped(bin::ByteReader& reader, Kind expected);

/// Structural-validation helper for load paths: a failed condition means
/// the file is corrupt (or adversarial), which is an IoError — never UB.
void require(bool condition, const char* message);

// Parameter payloads shared by component files and the bundle manifest.
void write_index_params(std::ostream& out, const IndexParams& params);
IndexParams read_index_params(std::istream& in);
bool same_index_params(const IndexParams& a, const IndexParams& b);

void write_lbe_params(std::ostream& out, const core::LbeParams& params);
core::LbeParams read_lbe_params(std::istream& in);
bool same_lbe_params(const core::LbeParams& a, const core::LbeParams& b);

}  // namespace serialize

/// One full per-rank index set plus everything needed to validate that it
/// still matches the plan a search is about to run: the LBE grouping/
/// partitioning parameters, the index/chunking parameters, and the
/// master-side mapping table the ranks were carved from.
struct IndexBundle {
  core::LbeParams lbe;
  IndexParams index_params;
  ChunkingParams chunking;
  MappingTable mapping;
  /// Fingerprint (CRC-32) of the database the indexes were built from —
  /// peptides, decoy flags, modification spec, variant limits. Parameters
  /// and the mapping table alone cannot detect a same-shape database edit
  /// (e.g. one residue substituted); this can, so a stale bundle is
  /// rejected instead of silently altering results.
  std::uint32_t database_crc = 0;
  std::vector<std::unique_ptr<ChunkedIndex>> per_rank;

  int ranks() const noexcept { return static_cast<int>(per_rank.size()); }
};

/// File layout inside a bundle directory.
std::string bundle_manifest_path(const std::string& dir);
std::string bundle_rank_path(const std::string& dir, int rank);

/// Writes `dir/index.manifest` alone (creating `dir` if missing), from the
/// bundle's parameters, mapping table and database fingerprint — `per_rank`
/// may be empty. Lets `lbectl prepare` stream rank files one at a time
/// (build, save, drop) instead of holding every rank's index in memory.
void save_index_manifest(const std::string& dir, const IndexBundle& bundle);

/// save_index_manifest plus one `dir/rank<m>.idx` per `per_rank` entry.
/// Throws IoError on any write failure.
void save_index_bundle(const std::string& dir, const IndexBundle& bundle);

/// How `load_index_bundle` revives rank files.
enum class BundleLoadMode {
  /// Stream every array of every chunk into freshly allocated vectors and
  /// validate everything up front (the pre-v3 behaviour).
  kEager,
  /// mmap each rank file and bind arrays in place; the store columns and
  /// chunk directory are validated at map time, chunk payloads lazily on
  /// first query touch. Peak RSS and time-to-first-query scale with the
  /// chunks a workload actually visits, not with the bundle.
  kMapped,
};

/// Loads a bundle written by save_index_bundle. `mods` must be the same
/// modification set the indexes were built under and must outlive the
/// bundle. Throws IoError on missing/truncated/corrupt files or when a
/// rank file disagrees with the manifest's mapping table (for kMapped,
/// corruption inside a chunk payload surfaces at first touch instead).
IndexBundle load_index_bundle(const std::string& dir,
                              const chem::ModificationSet& mods,
                              BundleLoadMode mode = BundleLoadMode::kEager);

}  // namespace lbe::index
