// Internal index partitioning — the shared-memory chunking scheme of Fig. 1.
//
// Peptides are sorted by precursor mass and split into chunks of bounded
// size; each chunk owns an SlmIndex over its id range. A narrow-window
// search touches only the chunks whose mass range intersects the query's
// precursor window; an open search (ΔM = ∞) processes every chunk, which is
// the regime the paper's distributed experiments run in.
//
// This is also the paper's §IV escape hatch for the "2 billion ions" limit:
// no chunk's posting array outgrows practical array indexing.
//
// Warm starts come in two flavours. `load`/`load_file` streams every
// chunk's arrays into owned vectors up front (eager). `map_file` mmaps the
// rank file, validates only the metadata (params, store columns, chunk
// directory) and *lazily* materializes a chunk — CRC check plus in-place
// span binding, no copy — the first time a query window intersects it. A
// narrow-window search over a mapped index therefore reaches its first
// query without reading most of the file, and peak RSS scales with the
// chunks actually visited. Materialization is thread-safe (the engine
// fans queries over one index from many threads).
#pragma once

#include <atomic>
#include <cstddef>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "index/slm_index.hpp"

namespace lbe::bin {
class MmapFile;
class ByteReader;
}  // namespace lbe::bin

namespace lbe::index {

struct ChunkingParams {
  /// Max peptide entries per chunk; 0 = single chunk (paper §V-A disables
  /// internal partitioning in the distributed experiments).
  std::size_t max_chunk_entries = 0;
};

class ChunkedIndex {
 public:
  /// Takes ownership of `store`. `mods` must outlive the index.
  ChunkedIndex(PeptideStore store, const chem::ModificationSet& mods,
               const IndexParams& index_params,
               const ChunkingParams& chunking);

  // Chunk indexes hold pointers into `store_`, so the object must not move.
  ChunkedIndex(const ChunkedIndex&) = delete;
  ChunkedIndex& operator=(const ChunkedIndex&) = delete;

  const PeptideStore& store() const noexcept { return store_; }
  std::size_t num_chunks() const noexcept { return chunks_.size(); }
  std::size_t num_peptides() const noexcept { return store_.size(); }
  /// Forces materialization of every chunk on a mapped index.
  std::uint64_t num_postings() const;

  /// True when backed by a mapped file with lazily materialized chunks.
  bool mapped() const noexcept { return mapping_ != nullptr; }

  /// Chunks whose arrays are resident (always num_chunks() when eager).
  std::size_t num_chunks_loaded() const noexcept;

  /// Mass range [lo, hi] covered by chunk `c`.
  std::pair<Mass, Mass> chunk_mass_range(std::size_t c) const;

  /// Number of chunks a query with this precursor window would touch.
  std::size_t chunks_for_window(Mass query_mass, double tolerance) const;

  /// Runs shared-peak filtration, routing to intersecting chunks only.
  /// Thread-safe: all mutable query state lives in `arena` (one per
  /// thread). Chunks own disjoint peptide-id subsets, so one arena serves
  /// every chunk — each chunk's query opens a fresh scorecard epoch and
  /// emits its candidates before the next chunk runs. On a mapped index
  /// the first query into a chunk validates and binds it (IoError on
  /// corruption — never a silently wrong result).
  void query(const chem::Spectrum& spectrum, const QueryParams& params,
             std::vector<Candidate>& out, QueryWork& work,
             QueryArena& arena) const;

  /// Convenience overload using an internal arena. NOT thread-safe.
  void query(const chem::Spectrum& spectrum, const QueryParams& params,
             std::vector<Candidate>& out, QueryWork& work) const;

  /// Heap bytes of every *resident* chunk index plus the peptide store.
  /// Mapped, not-yet-touched chunks cost no heap and are not counted.
  std::uint64_t memory_bytes() const noexcept;

  /// Packed-stream footprint of every chunk's postings, block directories
  /// included (the numerator of the index_io suite's bytes_per_posting
  /// metric). Forces materialization on a mapped index.
  std::uint64_t packed_posting_bytes() const;

  /// Postings per m/z bin summed over chunks (chunks share one binning).
  /// Feeds the load-prediction model (search/load_model.hpp). 64-bit:
  /// per-chunk counts are u32 by construction, but a large multi-chunk
  /// database can overflow 32 bits once summed. Forces materialization.
  std::vector<std::uint64_t> bin_occupancy() const;

  /// bin_occupancy() prefix-summed (size bins+1), cached after the first
  /// call — the cost model's O(1)-per-span lookup table. Under work
  /// stealing a thief building a cost model against a victim's shared
  /// index reuses the owner's build-phase computation instead of
  /// re-walking every chunk mid-query-phase. Thread-safe; forces
  /// materialization on a mapped index (on the first call only).
  const std::vector<std::uint64_t>& occupancy_prefix() const;

  const IndexParams& index_params() const noexcept { return index_params_; }

  /// On-disk format (the paper's §II-B disk-resident chunks): store columns
  /// plus a chunk directory (mass range, file extent, CRC per chunk)
  /// followed by the chunks' raw aligned array payloads, all in the
  /// versioned container of index/serialize.hpp. `load` revives the index
  /// eagerly without re-fragmenting anything; `map_file` binds it lazily
  /// out of an mmap. The caller must supply the same ModificationSet and
  /// IndexParams used at build; corrupt or mismatched input raises
  /// IoError (for `map_file`, corruption inside a chunk payload raises it
  /// at first query touch instead of map time).
  void save(std::ostream& out) const;
  static std::unique_ptr<ChunkedIndex> load(std::istream& in,
                                            const chem::ModificationSet& mods,
                                            const IndexParams& index_params);

  void save_file(const std::string& path) const;
  static std::unique_ptr<ChunkedIndex> load_file(
      const std::string& path, const chem::ModificationSet& mods,
      const IndexParams& index_params);
  static std::unique_ptr<ChunkedIndex> map_file(
      const std::string& path, const chem::ModificationSet& mods,
      const IndexParams& index_params);

 private:
  struct Chunk {
    /// Owned arrays; null for a mapped chunk not yet materialized (then
    /// guarded by materialize_mutex_ / published through live_).
    mutable std::unique_ptr<SlmIndex> index;
    Mass mass_lo = 0.0;
    Mass mass_hi = 0.0;
    // File extent of the chunk's arrays payload (mapped indexes only),
    // recorded from the eagerly-validated chunk directory.
    std::uint64_t extent_offset = 0;
    std::uint64_t extent_size = 0;
    std::uint32_t extent_crc = 0;
  };

  /// Load-path constructor: adopts the store without building chunks.
  ChunkedIndex(PeptideStore store, const chem::ModificationSet& mods,
               const IndexParams& index_params, std::nullptr_t);

  /// Marks every chunk resident (cold build / eager load).
  void publish_all_chunks() noexcept;

  /// Resident chunk accessor; materializes a mapped chunk on first touch
  /// (lock-free fast path, single mutex for the rare slow path).
  const SlmIndex& chunk_index(std::size_t c) const;
  const SlmIndex& materialize_chunk(std::size_t c) const;

  PeptideStore store_;
  const chem::ModificationSet* mods_;
  IndexParams index_params_;
  std::vector<Chunk> chunks_;
  /// Parallel to chunks_: the published (validated, bound) index of each
  /// chunk, or null while a mapped chunk is still cold.
  mutable std::vector<std::atomic<const SlmIndex*>> live_;
  mutable std::mutex materialize_mutex_;
  mutable std::once_flag occupancy_once_;
  mutable std::vector<std::uint64_t> occupancy_prefix_;
  std::shared_ptr<const bin::MmapFile> mapping_;
  // Backs the no-arena convenience overload only (shared across chunks so
  // a chunked index pays for one scorecard, not one per chunk).
  mutable QueryArena internal_arena_;
};

}  // namespace lbe::index
