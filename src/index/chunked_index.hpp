// Internal index partitioning — the shared-memory chunking scheme of Fig. 1.
//
// Peptides are sorted by precursor mass and split into chunks of bounded
// size; each chunk owns an SlmIndex over its id range. A narrow-window
// search touches only the chunks whose mass range intersects the query's
// precursor window; an open search (ΔM = ∞) processes every chunk, which is
// the regime the paper's distributed experiments run in.
//
// This is also the paper's §IV escape hatch for the "2 billion ions" limit:
// no chunk's posting array outgrows practical array indexing.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "index/slm_index.hpp"

namespace lbe::index {

struct ChunkingParams {
  /// Max peptide entries per chunk; 0 = single chunk (paper §V-A disables
  /// internal partitioning in the distributed experiments).
  std::size_t max_chunk_entries = 0;
};

class ChunkedIndex {
 public:
  /// Takes ownership of `store`. `mods` must outlive the index.
  ChunkedIndex(PeptideStore store, const chem::ModificationSet& mods,
               const IndexParams& index_params,
               const ChunkingParams& chunking);

  // Chunk indexes hold pointers into `store_`, so the object must not move.
  ChunkedIndex(const ChunkedIndex&) = delete;
  ChunkedIndex& operator=(const ChunkedIndex&) = delete;

  const PeptideStore& store() const noexcept { return store_; }
  std::size_t num_chunks() const noexcept { return chunks_.size(); }
  std::size_t num_peptides() const noexcept { return store_.size(); }
  std::uint64_t num_postings() const noexcept;

  /// Mass range [lo, hi] covered by chunk `c`.
  std::pair<Mass, Mass> chunk_mass_range(std::size_t c) const;

  /// Number of chunks a query with this precursor window would touch.
  std::size_t chunks_for_window(Mass query_mass, double tolerance) const;

  /// Runs shared-peak filtration, routing to intersecting chunks only.
  /// Thread-safe: all mutable query state lives in `arena` (one per
  /// thread). Chunks own disjoint peptide-id subsets, so one arena serves
  /// every chunk — each chunk's query opens a fresh scorecard epoch and
  /// emits its candidates before the next chunk runs.
  void query(const chem::Spectrum& spectrum, const QueryParams& params,
             std::vector<Candidate>& out, QueryWork& work,
             QueryArena& arena) const;

  /// Convenience overload using an internal arena. NOT thread-safe.
  void query(const chem::Spectrum& spectrum, const QueryParams& params,
             std::vector<Candidate>& out, QueryWork& work) const;

  /// Heap bytes of every chunk index plus the peptide store.
  std::uint64_t memory_bytes() const noexcept;

  /// Postings per m/z bin summed over chunks (chunks share one binning).
  /// Feeds the load-prediction model (search/load_model.hpp).
  std::vector<std::uint32_t> bin_occupancy() const;

  const IndexParams& index_params() const noexcept { return index_params_; }

  /// On-disk format (the paper's §II-B disk-resident chunks): store columns
  /// plus each chunk's transformed arrays, in the versioned, per-section
  /// CRC-checked container of index/serialize.hpp. `load` revives the index
  /// without re-fragmenting anything; the caller must supply the same
  /// ModificationSet and IndexParams used at build, and corrupt or
  /// mismatched input raises IoError.
  void save(std::ostream& out) const;
  static std::unique_ptr<ChunkedIndex> load(std::istream& in,
                                            const chem::ModificationSet& mods,
                                            const IndexParams& index_params);

  void save_file(const std::string& path) const;
  static std::unique_ptr<ChunkedIndex> load_file(
      const std::string& path, const chem::ModificationSet& mods,
      const IndexParams& index_params);

 private:
  struct Chunk {
    std::unique_ptr<SlmIndex> index;
    Mass mass_lo;
    Mass mass_hi;
  };

  /// Load-path constructor: adopts the store without building chunks.
  ChunkedIndex(PeptideStore store, const chem::ModificationSet& mods,
               const IndexParams& index_params, std::nullptr_t);

  PeptideStore store_;
  const chem::ModificationSet* mods_;
  IndexParams index_params_;
  std::vector<Chunk> chunks_;
  // Backs the no-arena convenience overload only (shared across chunks so
  // a chunked index pays for one scorecard, not one per chunk).
  mutable QueryArena internal_arena_;
};

}  // namespace lbe::index
