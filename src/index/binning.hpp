// m/z discretization for the ion index.
//
// SLM-Transform quantizes fragment m/z at resolution r (paper: r = 0.01 Da)
// and stores postings per bin. All tolerance arithmetic then happens in
// integer bin space, which is what makes the query loop branch-light.
#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "common/types.hpp"

namespace lbe::index {

using MzBin = std::uint32_t;

class Binning {
 public:
  /// `resolution` in Da per bin; `max_mz` caps the indexed range (fragments
  /// above it are dropped, matching SLM's bounded ion array).
  Binning(double resolution, Mz max_mz)
      : resolution_(resolution), max_mz_(max_mz) {
    LBE_CHECK(resolution > 0.0, "resolution must be positive");
    LBE_CHECK(max_mz > resolution, "max_mz must exceed one bin");
  }

  double resolution() const noexcept { return resolution_; }
  Mz max_mz() const noexcept { return max_mz_; }

  /// Total number of bins; valid bins are [0, num_bins()).
  MzBin num_bins() const noexcept {
    return static_cast<MzBin>(max_mz_ / resolution_) + 1;
  }

  /// True if `mz` falls inside the indexed range.
  bool in_range(Mz mz) const noexcept {
    return mz >= 0.0 && mz <= max_mz_;
  }

  /// Bin of `mz`. Precondition: in_range(mz).
  MzBin bin(Mz mz) const noexcept {
    return static_cast<MzBin>(mz / resolution_);
  }

  /// Width of a mass tolerance window in bins (rounded up, >= 0). Clamped
  /// to num_bins(): a window that wide already covers every bin from any
  /// center, and clamping before the cast keeps a huge tolerance from
  /// overflowing MzBin (double -> u32 past the range is UB) and from
  /// wrapping `center + tolerance_bins` sums downstream.
  MzBin tolerance_bins(double tolerance_da) const noexcept {
    if (tolerance_da <= 0.0) return 0;
    const double bins = tolerance_da / resolution_ + 0.5;
    if (bins >= static_cast<double>(num_bins())) return num_bins();
    return static_cast<MzBin>(bins);
  }

  /// Center m/z of a bin (for diagnostics).
  Mz bin_center(MzBin b) const noexcept {
    return (static_cast<double>(b) + 0.5) * resolution_;
  }

 private:
  double resolution_;
  Mz max_mz_;
};

}  // namespace lbe::index
