// Multi-process rank transport: the real-OS-process implementation of
// mpi::Transport.
//
// `ProcessTransport::run(fn)` executes `fn` as rank 0 on the calling thread
// and forks one worker process per remaining rank (re-exec'ing the current
// binary via /proc/self/exe with a `--rank-worker` argv). Ranks exchange the
// exact same `Bytes` payloads as the simulated engines, framed over
// Unix-domain sockets ("LBEW" frames on the primitives in common/net.hpp) in
// a star topology: every worker connects to the master, which routes
// worker-to-worker traffic on a dedicated router thread. Co-located ranks
// share physical memory for the index by each mmap'ing the same read-only
// bundle files (index/serialize.hpp) — the kernel keeps one page-cache copy.
//
// Because a C++ closure cannot cross an exec boundary, workers run a *rank
// program* registered by name in the binary (`register_rank_program`); the
// master ships the program name plus an opaque setup payload in the
// handshake. Apps that want to be process-transport hosts call
// `rank_worker_main` at the top of main() when `is_rank_worker` says so.
//
// Failure handling is fail-fast and typed: a worker that crashes or closes
// its socket mid-run, a frame with a bad magic, or an oversized length
// prefix all surface at the master as CommError (FrameTooLargeError for the
// oversize case) instead of a hang; the master then SIGKILLs and reaps every
// remaining worker, so no zombies outlive a failed run. Workers arrange a
// parent-death signal so a dying master cannot strand them either.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "simmpi/bytes.hpp"
#include "simmpi/transport.hpp"

namespace lbe::mpi {

struct ProcessTransportOptions {
  int ranks = 4;
  /// Name of the registered rank program the worker processes execute.
  std::string program;
  /// Opaque payload handed to every worker's rank program (typically the
  /// serialized job description; see search/wire.hpp for the search one).
  Bytes setup;
  /// Directory for the rendezvous socket; "" = fresh temp directory.
  std::string socket_dir;
  /// Admission bound for one frame's payload on the worker sockets.
  std::uint64_t max_frame_bytes = 256ull << 20;
  /// How long to wait for all workers to connect before giving up.
  double spawn_timeout_seconds = 30.0;
};

class ProcessTransport final : public Transport {
 public:
  explicit ProcessTransport(ProcessTransportOptions options);

  int ranks() const noexcept override { return options_.ranks; }

  /// Spawns the workers, runs `rank_main` as rank 0, routes messages until
  /// every worker reports done, reaps all children. Rethrows the first
  /// failure (local or remote) as a typed error after cleanup.
  void run(const std::function<void(Comm&)>& rank_main) override;

  const std::vector<RankReport>& reports() const noexcept override {
    return reports_;
  }

  /// Max final clock over ranks — here real elapsed seconds, so the
  /// process backend's makespan is honest wall time, not simulated time.
  double makespan() const override;

  const ProcessTransportOptions& options() const noexcept { return options_; }

 private:
  ProcessTransportOptions options_;
  std::vector<RankReport> reports_;
};

/// A named SPMD body a worker process can run: the worker-side counterpart
/// of the closure the in-process engines execute on every rank.
using RankProgram = std::function<void(Comm&, const Bytes& setup)>;

/// Registers `program` under `name` (latest registration wins). Apps
/// register their programs before dispatching to rank_worker_main.
void register_rank_program(const std::string& name, RankProgram program);

/// True when this process was spawned as a rank worker (argv[1] is
/// "--rank-worker"). Check at the very top of main().
bool is_rank_worker(int argc, char** argv);

/// Worker-process entry point: connects back to the master, runs the
/// requested registered rank program, reports stats, returns the exit code
/// for main() to return. Only call when is_rank_worker() is true.
int rank_worker_main(int argc, char** argv);

}  // namespace lbe::mpi
