// Byte-buffer serialization for simulated message passing.
//
// Messages cross simulated address spaces as flat byte vectors, exactly like
// MPI buffers — no pointers survive the hop, which keeps rank code honest
// about what is local and what travelled. Writers/readers are explicitly
// little-endian-on-byte-level (memcpy of fixed-width types; every supported
// host is little-endian, and a static_assert documents the assumption).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace lbe::mpi {

using Bytes = std::vector<std::uint8_t>;

/// Appends values to a byte vector.
class ByteWriter {
 public:
  explicit ByteWriter(Bytes& out) : out_(out) {}

  template <typename T>
  void pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "only trivially copyable types cross rank boundaries");
    const auto offset = out_.size();
    out_.resize(offset + sizeof(T));
    std::memcpy(out_.data() + offset, &value, sizeof(T));
  }

  void string(const std::string& s) {
    pod(static_cast<std::uint64_t>(s.size()));
    const auto offset = out_.size();
    out_.resize(offset + s.size());
    std::memcpy(out_.data() + offset, s.data(), s.size());
  }

  template <typename T>
  void vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    pod(static_cast<std::uint64_t>(v.size()));
    const auto offset = out_.size();
    out_.resize(offset + v.size() * sizeof(T));
    if (!v.empty()) {
      std::memcpy(out_.data() + offset, v.data(), v.size() * sizeof(T));
    }
  }

 private:
  Bytes& out_;
};

/// Reads values back; throws CommError on underrun (malformed message).
class ByteReader {
 public:
  explicit ByteReader(const Bytes& in) : in_(in) {}
  // The reader keeps a reference; binding a temporary would dangle.
  explicit ByteReader(Bytes&&) = delete;

  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    require(sizeof(T));
    T value;
    std::memcpy(&value, in_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::string string() {
    const auto size = pod<std::uint64_t>();
    require(size);
    std::string s(reinterpret_cast<const char*>(in_.data() + pos_),
                  static_cast<std::size_t>(size));
    pos_ += size;
    return s;
  }

  template <typename T>
  std::vector<T> vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto count = pod<std::uint64_t>();
    // Divide instead of multiplying: `count * sizeof(T)` can wrap for an
    // adversarial count, slipping past the underrun check into a huge
    // allocation. Malformed input must fail as CommError, never OOM.
    if (count > remaining() / sizeof(T)) {
      throw CommError("message underrun: truncated or mis-typed payload");
    }
    std::vector<T> v(static_cast<std::size_t>(count));
    if (count) {
      std::memcpy(v.data(), in_.data() + pos_,
                  static_cast<std::size_t>(count) * sizeof(T));
    }
    pos_ += count * sizeof(T);
    return v;
  }

  bool exhausted() const noexcept { return pos_ == in_.size(); }
  std::size_t remaining() const noexcept { return in_.size() - pos_; }

 private:
  void require(std::uint64_t bytes) const {
    // Compare against the remaining span rather than `pos_ + bytes`, which
    // can wrap for an adversarial 64-bit length prefix and sail past the
    // check into a huge string/vector allocation.
    if (bytes > in_.size() - pos_) {
      throw CommError("message underrun: truncated or mis-typed payload");
    }
  }

  const Bytes& in_;
  std::size_t pos_ = 0;
};

}  // namespace lbe::mpi
