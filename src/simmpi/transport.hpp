// The rank-communication abstraction every distributed phase is written
// against.
//
// `Comm` is the per-rank communicator handle (the MPI_Comm analogue): point
// to point send/recv/probe, a barrier, clock accounting, and collectives
// (bcast/gather/allreduce) implemented once here on top of the point-to-
// point virtuals so every backend shares one deterministic collective
// algorithm — the exact same `Bytes` payloads cross every transport.
//
// `Transport` owns the rank fleet and runs one SPMD program. Three
// implementations:
//
//  * simmpi::Cluster with Engine::kVirtual — token-serialized ranks with
//    virtual clocks and the α–β cost model (the deterministic test double
//    the paper's timing figures are built from);
//  * simmpi::Cluster with Engine::kThreads — real concurrent threads with
//    blocking mailboxes (validates messaging semantics under concurrency);
//  * ProcessTransport (simmpi/process.hpp) — one OS process per rank,
//    exchanging the same payloads over Unix-domain sockets, with co-located
//    ranks sharing read-only mappings of the index bundle.
//
// For a process transport the SPMD function cannot cross the process
// boundary, so `run(fn)` executes `fn` as rank 0 in the calling process
// while the worker ranks run a *registered rank program* (see
// simmpi/process.hpp) that must implement the same protocol. The in-process
// engines run `fn` on every rank.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "simmpi/bytes.hpp"

namespace lbe::mpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct RecvInfo {
  int src = 0;
  int tag = 0;
};

/// Per-rank communication counters plus the rank's final (virtual or real)
/// clock. For a process backend these are *real* observed bytes/messages,
/// reported next to the Eq. 1 predicted loads.
struct RankReport {
  double vclock = 0.0;
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  /// Peak resident set of the rank's process (process backend only; 0 for
  /// the in-process engines, where per-rank RSS is not meaningful).
  std::uint64_t peak_rss_bytes = 0;
};

/// Per-rank communicator handle. Only valid inside Transport::run's rank
/// function (or a worker rank program). Collectives are non-virtual and
/// built on the point-to-point primitives with internal (negative) tags, so
/// user tags (>= 0) and the wildcard (-1) never collide with them.
class Comm {
 public:
  virtual ~Comm() = default;
  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  int rank() const noexcept { return rank_; }
  virtual int size() const noexcept = 0;

  /// Buffered send; never blocks. Tags must be >= 0 (negative = internal).
  void send(int dest, int tag, Bytes payload);

  /// Blocks until a matching message arrives. kAnySource/kAnyTag wildcard.
  Bytes recv(int src, int tag, RecvInfo* info = nullptr);

  /// Non-blocking: true if recv(src, tag) would not block.
  virtual bool probe(int src, int tag) = 0;

  virtual void barrier() = 0;

  /// Linear broadcast from root; all ranks must call.
  void bcast(Bytes& data, int root);

  /// Gather to root; returns per-rank payloads at root, empty elsewhere.
  std::vector<Bytes> gather(Bytes mine, int root);

  double allreduce_max(double value);
  double allreduce_sum(double value);

  /// Current clock of this rank: virtual time on the simulated engines,
  /// real elapsed seconds on a process backend.
  virtual double vclock() = 0;

  /// Explicitly advances this rank's clock (deterministic cost; a no-op
  /// offset on backends whose clock is real time).
  virtual void charge(double seconds) = 0;

  /// Scheduling hint for long compute loops with no blocking calls: on the
  /// token-serialized virtual engine, re-enters the scheduler so any rank
  /// that is *behind* in virtual time runs first — without it, a rank that
  /// never blocks executes arbitrarily far ahead in one slice and protocols
  /// that read cross-rank progress (e.g. work stealing) see a distorted
  /// picture. A no-op on every concurrently-executing backend.
  virtual void yield() {}

 protected:
  explicit Comm(int rank) : rank_(rank) {}

  /// Backend send/recv. `tag` may be negative here: the collectives above
  /// reserve tags <= -2 for themselves; user sends are validated first.
  virtual void send_any(int dest, int tag, Bytes payload) = 0;
  virtual Bytes recv_any(int src, int tag, RecvInfo* info) = 0;

 private:
  double reduce_impl(double value, bool is_sum);

  int rank_;
};

/// A fleet of ranks that can execute one SPMD program. Implementations own
/// scheduling, delivery, clocks and per-rank accounting.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual int ranks() const noexcept = 0;

  /// Runs one SPMD program; rethrows the first rank failure. In-process
  /// engines run `rank_main` on every rank; a process backend runs it as
  /// rank 0 only (workers execute their registered rank program).
  virtual void run(const std::function<void(Comm&)>& rank_main) = 0;

  /// Per-rank clocks and communication counters of the last run.
  virtual const std::vector<RankReport>& reports() const noexcept = 0;

  /// Max final clock over ranks — the (simulated or real) wall time.
  virtual double makespan() const = 0;
};

}  // namespace lbe::mpi
