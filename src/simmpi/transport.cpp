#include "simmpi/transport.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace lbe::mpi {

namespace {
// Internal collective tags live below kAnyTag so user tags (>= 0) and the
// wildcard (-1) never collide with them.
constexpr int kBcastTag = -2;
constexpr int kGatherTag = -3;
constexpr int kReduceTag = -4;
}  // namespace

void Comm::send(int dest, int tag, Bytes payload) {
  if (tag < 0) throw CommError("user tags must be >= 0");
  send_any(dest, tag, std::move(payload));
}

Bytes Comm::recv(int src, int tag, RecvInfo* info) {
  return recv_any(src, tag, info);
}

void Comm::bcast(Bytes& data, int root) {
  if (rank_ == root) {
    for (int dest = 0; dest < size(); ++dest) {
      if (dest == root) continue;
      send_any(dest, kBcastTag, data);
    }
  } else {
    data = recv_any(root, kBcastTag, nullptr);
  }
}

std::vector<Bytes> Comm::gather(Bytes mine, int root) {
  if (rank_ != root) {
    send_any(root, kGatherTag, std::move(mine));
    return {};
  }
  std::vector<Bytes> out(static_cast<std::size_t>(size()));
  out[static_cast<std::size_t>(root)] = std::move(mine);
  // Rank order keeps the collective deterministic.
  for (int src = 0; src < size(); ++src) {
    if (src == root) continue;
    out[static_cast<std::size_t>(src)] = recv_any(src, kGatherTag, nullptr);
  }
  return out;
}

double Comm::reduce_impl(double value, bool is_sum) {
  // Gather to rank 0, reduce, broadcast back. Linear but cost-model exact.
  const int p = size();
  double result = value;
  if (rank_ == 0) {
    for (int src = 1; src < p; ++src) {
      const Bytes bytes = recv_any(src, kReduceTag, nullptr);
      ByteReader reader(bytes);
      const double other = reader.pod<double>();
      result = is_sum ? result + other : std::max(result, other);
    }
    Bytes out;
    ByteWriter out_writer(out);
    out_writer.pod(result);
    bcast(out, 0);
  } else {
    Bytes mine;
    ByteWriter writer(mine);
    writer.pod(value);
    send_any(0, kReduceTag, std::move(mine));
    Bytes in;
    bcast(in, 0);
    ByteReader reader(in);
    result = reader.pod<double>();
  }
  return result;
}

double Comm::allreduce_max(double value) {
  return reduce_impl(value, /*is_sum=*/false);
}

double Comm::allreduce_sum(double value) {
  return reduce_impl(value, /*is_sum=*/true);
}

}  // namespace lbe::mpi
