#include "simmpi/cluster.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace lbe::mpi {

namespace {
constexpr std::size_t kNoMatch = std::numeric_limits<std::size_t>::max();
}  // namespace

// ------------------------------------------------------------- Cluster ----

Cluster::Cluster(ClusterOptions options) : options_(std::move(options)) {
  if (options_.ranks < 1) {
    throw CommError("cluster needs at least one rank");
  }
  if (!options_.slowdown.empty() &&
      options_.slowdown.size() != static_cast<std::size_t>(options_.ranks)) {
    throw CommError("slowdown vector must have one entry per rank");
  }
  for (const double f : options_.slowdown) {
    if (f <= 0.0) throw CommError("slowdown factors must be positive");
  }
  serialize_ = options_.engine == Engine::kVirtual;
  ranks_.resize(static_cast<std::size_t>(options_.ranks));
  for (std::size_t i = 0; i < ranks_.size(); ++i) {
    ranks_[i].slowdown = options_.slowdown.empty() ? 1.0 : options_.slowdown[i];
  }
  reports_.resize(ranks_.size());
}

void Cluster::reset_clocks() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& rank : ranks_) {
    rank.vclock = 0.0;
    rank.report = RankReport{};
  }
}

double Cluster::makespan() const {
  double best = 0.0;
  for (const auto& report : reports_) best = std::max(best, report.vclock);
  return best;
}

void Cluster::meter_locked(int rank) {
  auto& r = ranks_[static_cast<std::size_t>(rank)];
  if (options_.measured_time && serialize_) {
    const auto now = std::chrono::steady_clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - r.slice_start).count();
    r.vclock += elapsed * r.slowdown;
    r.slice_start = now;
  }
}

void Cluster::resume_slice_locked(int rank) {
  ranks_[static_cast<std::size_t>(rank)].slice_start =
      std::chrono::steady_clock::now();
}

bool Cluster::matches_locked(const Envelope& env, int src, int tag) const {
  return (src == kAnySource || env.src == src) &&
         (tag == kAnyTag || env.tag == tag);
}

std::size_t Cluster::find_match_locked(int rank, int src, int tag) const {
  const auto& mailbox = ranks_[static_cast<std::size_t>(rank)].mailbox;
  std::size_t best = kNoMatch;
  for (std::size_t i = 0; i < mailbox.size(); ++i) {
    if (!matches_locked(mailbox[i], src, tag)) continue;
    if (best == kNoMatch ||
        mailbox[i].available_at < mailbox[best].available_at ||
        (mailbox[i].available_at == mailbox[best].available_at &&
         mailbox[i].seq < mailbox[best].seq)) {
      best = i;
    }
  }
  return best;
}

void Cluster::abort_locked(std::exception_ptr error) {
  if (!first_error_) first_error_ = error;
  aborting_ = true;
  cv_.notify_all();
}

void Cluster::check_deadlock_locked() {
  bool any_live = false;
  for (const auto& rank : ranks_) {
    if (rank.state == State::kRunning || rank.state == State::kReady) return;
    if (rank.state != State::kDone) any_live = true;
  }
  if (any_live && !aborting_) {
    abort_locked(std::make_exception_ptr(CommError(
        "deadlock: every live rank is blocked (lost message or mismatched "
        "collective)")));
  }
}

void Cluster::schedule_next_locked() {
  if (!serialize_) {
    check_deadlock_locked();
    return;
  }
  int best = -1;
  double best_clock = 0.0;
  for (std::size_t i = 0; i < ranks_.size(); ++i) {
    if (ranks_[i].state != State::kReady) continue;
    if (best < 0 || ranks_[i].vclock < best_clock) {
      best = static_cast<int>(i);
      best_clock = ranks_[i].vclock;
    }
  }
  if (best >= 0) {
    ranks_[static_cast<std::size_t>(best)].state = State::kRunning;
    return;  // caller notifies
  }
  check_deadlock_locked();
}

void Cluster::rank_thread(int rank,
                          const std::function<void(Comm&)>& rank_main) {
  auto& r = ranks_[static_cast<std::size_t>(rank)];
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return aborting_ || r.state == State::kRunning; });
    if (aborting_) {
      r.state = State::kDone;
      schedule_next_locked();
      cv_.notify_all();
      return;
    }
    resume_slice_locked(rank);
  }

  std::exception_ptr error;
  try {
    RankComm comm(this, rank);
    rank_main(comm);
  } catch (...) {
    error = std::current_exception();
  }

  std::lock_guard<std::mutex> lock(mutex_);
  meter_locked(rank);
  if (error) {
    // A CommError thrown *because* of an abort is a symptom, not a cause;
    // abort_locked keeps only the first error either way.
    abort_locked(error);
  }
  r.state = State::kDone;
  schedule_next_locked();
  cv_.notify_all();
}

void Cluster::run(const std::function<void(Comm&)>& rank_main) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    aborting_ = false;
    first_error_ = nullptr;
    next_seq_ = 0;
    barrier_count_ = 0;
    barrier_max_vclock_ = 0.0;
    for (auto& rank : ranks_) {
      rank.state = serialize_ ? State::kReady : State::kRunning;
      rank.mailbox.clear();
      rank.want_src = kAnySource;
      rank.want_tag = kAnyTag;
      rank.slice_start = std::chrono::steady_clock::now();
    }
  }

  std::vector<std::thread> threads;
  threads.reserve(ranks_.size());
  for (int i = 0; i < options_.ranks; ++i) {
    threads.emplace_back([this, i, &rank_main] { rank_thread(i, rank_main); });
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (serialize_) schedule_next_locked();
    cv_.notify_all();
  }
  for (auto& thread : threads) thread.join();

  for (std::size_t i = 0; i < ranks_.size(); ++i) {
    ranks_[i].report.vclock = ranks_[i].vclock;
    reports_[i] = ranks_[i].report;
  }
  if (first_error_) std::rethrow_exception(first_error_);
}

// --------------------------------------------------- RankComm backends ----

void Cluster::do_send(int rank, int dest, int tag, Bytes payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& sender = ranks_[static_cast<std::size_t>(rank)];
  meter_locked(rank);
  if (dest < 0 || dest >= options_.ranks) {
    throw CommError("send to invalid rank " + std::to_string(dest));
  }

  Envelope env;
  env.src = rank;
  env.dest = dest;
  env.tag = tag;
  env.payload = std::move(payload);
  env.seq = next_seq_++;

  const std::size_t bytes = env.payload.size();
  double cost = options_.cost.transfer(bytes);
  if (options_.faults.delay) cost += options_.faults.delay(env);
  sender.vclock += cost;
  env.available_at = sender.vclock;
  sender.report.messages_sent++;
  sender.report.bytes_sent += bytes;

  const bool dropped = options_.faults.drop && options_.faults.drop(env);
  if (!dropped) {
    auto& receiver = ranks_[static_cast<std::size_t>(dest)];
    const bool wakes = receiver.state == State::kBlocked &&
                       matches_locked(env, receiver.want_src,
                                      receiver.want_tag);
    receiver.mailbox.push_back(std::move(env));
    // Mark the receiver runnable in both engines: the virtual scheduler
    // needs kReady to pick it, and the threads-engine deadlock check must
    // not see a stale kBlocked on a rank whose message just arrived.
    if (wakes) receiver.state = State::kReady;
    cv_.notify_all();
  }
  resume_slice_locked(rank);
}

Bytes Cluster::do_recv(int rank, int src, int tag, RecvInfo* info) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto& r = ranks_[static_cast<std::size_t>(rank)];
  meter_locked(rank);
  if (src != kAnySource && (src < 0 || src >= options_.ranks)) {
    throw CommError("recv from invalid rank " + std::to_string(src));
  }

  std::size_t idx;
  while ((idx = find_match_locked(rank, src, tag)) == kNoMatch) {
    r.want_src = src;
    r.want_tag = tag;
    r.state = State::kBlocked;
    schedule_next_locked();
    cv_.notify_all();
    cv_.wait(lock, [&] {
      if (aborting_) return true;
      if (serialize_) return r.state == State::kRunning;
      return find_match_locked(rank, src, tag) != kNoMatch;
    });
    if (aborting_) {
      throw CommError("cluster aborted while rank " + std::to_string(rank) +
                      " was in recv()");
    }
    if (!serialize_) r.state = State::kRunning;
  }

  auto it = r.mailbox.begin() + static_cast<std::ptrdiff_t>(idx);
  Envelope env = std::move(*it);
  r.mailbox.erase(it);
  r.vclock = std::max(r.vclock, env.available_at);
  r.report.messages_received++;
  if (info) {
    info->src = env.src;
    info->tag = env.tag;
  }
  resume_slice_locked(rank);
  return std::move(env.payload);
}

bool Cluster::do_probe(int rank, int src, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  meter_locked(rank);
  const std::size_t idx = find_match_locked(rank, src, tag);
  bool found = idx != kNoMatch;
  // Virtual engine: a message has not *arrived* until the prober's own
  // clock reaches its availability time. Threads physically interleave out
  // of virtual order here (a behind-in-vtime rank runs just as often as a
  // fast one), so without this gate a probe could observe traffic from its
  // virtual future — e.g. the steal ledger would see every rank's progress
  // in lockstep and never a backlog. find_match_locked returns the
  // earliest-available match, so one check covers them all. Blocking recv
  // stays ungated: it models waiting, and advances the clock to the
  // message's availability instead.
  if (found && serialize_) {
    const auto& r = ranks_[static_cast<std::size_t>(rank)];
    found = r.mailbox[idx].available_at <= r.vclock;
  }
  resume_slice_locked(rank);
  return found;
}

void Cluster::do_barrier(int rank) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto& r = ranks_[static_cast<std::size_t>(rank)];
  meter_locked(rank);

  const std::uint64_t generation = barrier_generation_;
  ++barrier_count_;
  barrier_max_vclock_ = std::max(barrier_max_vclock_, r.vclock);

  if (barrier_count_ == options_.ranks) {
    // Last arrival: everyone leaves at the same virtual instant.
    const double release =
        barrier_max_vclock_ + options_.cost.barrier(options_.ranks);
    for (auto& other : ranks_) {
      if (other.state == State::kInBarrier) {
        other.vclock = release;
        other.state = serialize_ ? State::kReady : State::kRunning;
      }
    }
    r.vclock = release;
    barrier_count_ = 0;
    barrier_max_vclock_ = 0.0;
    ++barrier_generation_;
    cv_.notify_all();
  } else {
    r.state = State::kInBarrier;
    schedule_next_locked();
    cv_.notify_all();
    cv_.wait(lock, [&] { return aborting_ || barrier_generation_ != generation; });
    if (aborting_) {
      throw CommError("cluster aborted while rank " + std::to_string(rank) +
                      " was in barrier()");
    }
    if (serialize_) {
      cv_.wait(lock, [&] { return aborting_ || r.state == State::kRunning; });
      if (aborting_) {
        throw CommError("cluster aborted while rank " + std::to_string(rank) +
                        " was leaving barrier()");
      }
    }
  }
  resume_slice_locked(rank);
}

double Cluster::do_vclock(int rank) {
  std::lock_guard<std::mutex> lock(mutex_);
  meter_locked(rank);
  resume_slice_locked(rank);
  return ranks_[static_cast<std::size_t>(rank)].vclock;
}

void Cluster::do_yield(int rank) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!serialize_) return;
  auto& r = ranks_[static_cast<std::size_t>(rank)];
  meter_locked(rank);
  // Re-enter the scheduler as an ordinary ready rank: whoever is furthest
  // behind in virtual time (possibly this rank again) runs next.
  r.state = State::kReady;
  schedule_next_locked();
  cv_.notify_all();
  cv_.wait(lock, [&] { return aborting_ || r.state == State::kRunning; });
  if (aborting_) {
    throw CommError("cluster aborted while rank " + std::to_string(rank) +
                    " was in yield()");
  }
  resume_slice_locked(rank);
}

void Cluster::do_charge(int rank, double seconds) {
  if (seconds < 0.0) throw CommError("cannot charge negative time");
  std::lock_guard<std::mutex> lock(mutex_);
  meter_locked(rank);
  ranks_[static_cast<std::size_t>(rank)].vclock += seconds;
  resume_slice_locked(rank);
}

}  // namespace lbe::mpi
