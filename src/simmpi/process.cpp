#include "simmpi/process.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "common/net.hpp"

namespace lbe::mpi {

namespace {

// ------------------------------------------------------- "LBEW" frames ----
//
// Same 16-byte shape as the serve daemon's "LBES" frames (magic u32, type
// u32, payload size u64) with a distinct magic, so a worker socket and a
// serve socket can never be confused for one another.

constexpr std::uint32_t kWorkerMagic = 0x5745424Cu;  // "LBEW"
constexpr std::size_t kWorkerHeaderBytes = 16;

enum class WireType : std::uint32_t {
  kHello = 0,       ///< worker -> master: {rank}
  kSetup,           ///< master -> worker: {program, setup payload}
  kSend,            ///< worker -> master: {dest, tag, payload}
  kDeliver,         ///< master -> worker: {src, tag, payload}
  kBarrierEnter,    ///< worker -> master
  kBarrierRelease,  ///< master -> worker
  kDone,            ///< worker -> master: final RankReport stats
  kError,           ///< worker -> master: {message}
};

struct WireFrame {
  WireType type = WireType::kHello;
  Bytes payload;
};

std::array<std::uint8_t, kWorkerHeaderBytes> encode_worker_header(
    WireType type, std::uint64_t payload_size) {
  std::array<std::uint8_t, kWorkerHeaderBytes> raw{};
  const std::uint32_t magic = kWorkerMagic;
  const auto type_value = static_cast<std::uint32_t>(type);
  std::memcpy(raw.data(), &magic, sizeof(magic));
  std::memcpy(raw.data() + 4, &type_value, sizeof(type_value));
  std::memcpy(raw.data() + 8, &payload_size, sizeof(payload_size));
  return raw;
}

/// Reads one frame. Returns false on clean EOF before a header; throws
/// CommError on garbage, FrameTooLargeError past the bound, IoError when
/// the peer vanishes mid-frame.
bool read_worker_frame(int fd, WireFrame& frame, std::uint64_t max_payload) {
  std::array<std::uint8_t, kWorkerHeaderBytes> raw;
  if (!net::read_exact(fd, raw.data(), raw.size())) return false;
  std::uint32_t magic = 0;
  std::uint32_t type_value = 0;
  std::uint64_t payload_size = 0;
  std::memcpy(&magic, raw.data(), sizeof(magic));
  std::memcpy(&type_value, raw.data() + 4, sizeof(type_value));
  std::memcpy(&payload_size, raw.data() + 8, sizeof(payload_size));
  if (magic != kWorkerMagic) {
    throw CommError("bad rank-worker frame magic (peer sent garbage)");
  }
  if (type_value > static_cast<std::uint32_t>(WireType::kError)) {
    throw CommError("unknown rank-worker frame type");
  }
  if (payload_size > max_payload) {
    throw net::FrameTooLargeError(
        "rank-worker frame payload exceeds the size bound");
  }
  frame.type = static_cast<WireType>(type_value);
  frame.payload.resize(static_cast<std::size_t>(payload_size));
  if (payload_size > 0 &&
      !net::read_exact(fd, frame.payload.data(), frame.payload.size())) {
    throw IoError("rank-worker peer disconnected mid-frame");
  }
  return true;
}

void write_worker_frame(int fd, WireType type, const Bytes& payload) {
  const auto header = encode_worker_header(type, payload.size());
  net::write_all(fd, header.data(), header.size());
  if (!payload.empty()) net::write_all(fd, payload.data(), payload.size());
}

std::uint64_t self_peak_rss_bytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

double elapsed_seconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

/// One in-flight message, master-side or worker-side.
struct Msg {
  int src = 0;
  int tag = 0;
  Bytes payload;
};

bool msg_matches(const Msg& msg, int src, int tag) {
  return (src == kAnySource || msg.src == src) &&
         (tag == kAnyTag || msg.tag == tag);
}

// ------------------------------------------------------ program registry ----

std::unordered_map<std::string, RankProgram>& program_registry() {
  static auto* registry = new std::unordered_map<std::string, RankProgram>();
  return *registry;
}

// --------------------------------------------------------- master side ----

struct WorkerConn {
  net::Fd fd;
  pid_t pid = -1;
  /// Serializes frame writes to this worker: the router thread (forwarded
  /// Deliver frames) and the master comm (rank-0 sends, barrier releases)
  /// both write here.
  std::mutex write_mutex;
};

struct MasterState {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Msg> mailbox;  ///< messages addressed to rank 0, arrival order
  int barrier_entered = 0;  ///< includes the master
  std::uint64_t barrier_generation = 0;
  int done_workers = 0;
  std::vector<RankReport> worker_reports;  ///< indexed by rank
  std::vector<bool> worker_done;
  std::exception_ptr error;
  bool shutdown = false;
};

void abort_master_locked(MasterState& state, std::exception_ptr error) {
  if (!state.error) state.error = error;
  state.cv.notify_all();
}

[[noreturn]] void rethrow_master_error(const MasterState& state) {
  std::rethrow_exception(state.error);
}

/// Sends BarrierRelease to every worker and releases the master waiter.
/// Requires state.mutex held (write mutexes nest inside it).
void release_barrier_locked(
    MasterState& state, std::vector<std::unique_ptr<WorkerConn>>& conns) {
  for (auto& conn : conns) {
    if (!conn->fd.valid()) continue;
    std::lock_guard<std::mutex> write_lock(conn->write_mutex);
    write_worker_frame(conn->fd.get(), WireType::kBarrierRelease, {});
  }
  state.barrier_entered = 0;
  ++state.barrier_generation;
  state.cv.notify_all();
}

class MasterComm final : public Comm {
 public:
  MasterComm(MasterState* state, std::vector<std::unique_ptr<WorkerConn>>* conns,
             int ranks)
      : Comm(0), state_(state), conns_(conns), ranks_(ranks),
        start_(std::chrono::steady_clock::now()) {}

  int size() const noexcept override { return ranks_; }

  bool probe(int src, int tag) override {
    std::lock_guard<std::mutex> lock(state_->mutex);
    if (state_->error) rethrow_master_error(*state_);
    for (const auto& msg : state_->mailbox) {
      if (msg_matches(msg, src, tag)) return true;
    }
    return false;
  }

  void barrier() override {
    std::unique_lock<std::mutex> lock(state_->mutex);
    if (state_->error) rethrow_master_error(*state_);
    const std::uint64_t generation = state_->barrier_generation;
    if (++state_->barrier_entered == ranks_) {
      release_barrier_locked(*state_, *conns_);
      return;
    }
    state_->cv.wait(lock, [&] {
      return state_->error || state_->barrier_generation != generation;
    });
    if (state_->error) rethrow_master_error(*state_);
  }

  double vclock() override { return elapsed_seconds(start_) + charged_; }
  void charge(double seconds) override {
    if (seconds < 0.0) throw CommError("cannot charge negative time");
    charged_ += seconds;
  }

  RankReport report() {
    RankReport out;
    out.vclock = vclock();
    out.messages_sent = messages_sent_;
    out.bytes_sent = bytes_sent_;
    out.messages_received = messages_received_;
    out.peak_rss_bytes = self_peak_rss_bytes();
    return out;
  }

 protected:
  void send_any(int dest, int tag, Bytes payload) override {
    if (dest < 0 || dest >= ranks_) {
      throw CommError("send to invalid rank " + std::to_string(dest));
    }
    ++messages_sent_;
    bytes_sent_ += payload.size();
    if (dest == 0) {
      std::lock_guard<std::mutex> lock(state_->mutex);
      state_->mailbox.push_back(Msg{0, tag, std::move(payload)});
      state_->cv.notify_all();
      return;
    }
    Bytes frame;
    ByteWriter writer(frame);
    writer.pod(0);  // src
    writer.pod(tag);
    writer.vector(payload);
    auto& conn = *(*conns_)[static_cast<std::size_t>(dest - 1)];
    std::lock_guard<std::mutex> write_lock(conn.write_mutex);
    write_worker_frame(conn.fd.get(), WireType::kDeliver, frame);
  }

  Bytes recv_any(int src, int tag, RecvInfo* info) override {
    if (src != kAnySource && (src < 0 || src >= ranks_)) {
      throw CommError("recv from invalid rank " + std::to_string(src));
    }
    std::unique_lock<std::mutex> lock(state_->mutex);
    while (true) {
      if (state_->error) rethrow_master_error(*state_);
      for (auto it = state_->mailbox.begin(); it != state_->mailbox.end();
           ++it) {
        if (!msg_matches(*it, src, tag)) continue;
        Msg msg = std::move(*it);
        state_->mailbox.erase(it);
        ++messages_received_;
        if (info) {
          info->src = msg.src;
          info->tag = msg.tag;
        }
        return std::move(msg.payload);
      }
      state_->cv.wait(lock);
    }
  }

 private:
  MasterState* state_;
  std::vector<std::unique_ptr<WorkerConn>>* conns_;
  int ranks_;
  std::chrono::steady_clock::time_point start_;
  double charged_ = 0.0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t messages_received_ = 0;
};

/// Master router: owns all worker fds for reading, forwards worker-to-worker
/// traffic, counts barrier arrivals, and collects Done reports. Any protocol
/// violation or premature EOF aborts the whole run with a typed error.
void route_worker_traffic(MasterState& state,
                          std::vector<std::unique_ptr<WorkerConn>>& conns,
                          std::uint64_t max_frame_bytes) {
  const int workers = static_cast<int>(conns.size());
  std::vector<bool> closed(conns.size(), false);
  while (true) {
    std::vector<pollfd> fds;
    std::vector<int> owners;  // worker index per pollfd
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      if (state.shutdown || state.error ||
          state.done_workers == workers) {
        return;
      }
    }
    for (std::size_t i = 0; i < conns.size(); ++i) {
      if (closed[i]) continue;
      fds.push_back(pollfd{conns[i]->fd.get(), POLLIN, 0});
      owners.push_back(static_cast<int>(i));
    }
    if (fds.empty()) return;
    const int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      std::lock_guard<std::mutex> lock(state.mutex);
      abort_master_locked(
          state, std::make_exception_ptr(
                     IoError(std::string("poll: ") + std::strerror(errno))));
      return;
    }
    if (ready == 0) continue;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const int worker = owners[i];
      const int rank = worker + 1;
      try {
        WireFrame frame;
        if (!read_worker_frame(fds[i].fd, frame, max_frame_bytes)) {
          closed[static_cast<std::size_t>(worker)] = true;
          std::lock_guard<std::mutex> lock(state.mutex);
          if (!state.worker_done[static_cast<std::size_t>(rank)]) {
            abort_master_locked(
                state,
                std::make_exception_ptr(CommError(
                    "rank " + std::to_string(rank) +
                    " worker exited before finishing (crashed or killed)")));
            return;
          }
          continue;  // clean EOF after Done
        }
        switch (frame.type) {
          case WireType::kSend: {
            ByteReader reader(frame.payload);
            const int dest = reader.pod<int>();
            const int tag = reader.pod<int>();
            Bytes payload = reader.vector<std::uint8_t>();
            if (dest == 0) {
              std::lock_guard<std::mutex> lock(state.mutex);
              state.mailbox.push_back(Msg{rank, tag, std::move(payload)});
              state.cv.notify_all();
            } else {
              auto& conn = *conns[static_cast<std::size_t>(dest - 1)];
              Bytes deliver;
              ByteWriter writer(deliver);
              writer.pod(rank);
              writer.pod(tag);
              writer.vector(payload);
              std::lock_guard<std::mutex> write_lock(conn.write_mutex);
              write_worker_frame(conn.fd.get(), WireType::kDeliver, deliver);
            }
            break;
          }
          case WireType::kBarrierEnter: {
            std::lock_guard<std::mutex> lock(state.mutex);
            const int total = workers + 1;
            if (++state.barrier_entered == total) {
              release_barrier_locked(state, conns);
            }
            break;
          }
          case WireType::kDone: {
            ByteReader reader(frame.payload);
            RankReport report;
            report.messages_sent = reader.pod<std::uint64_t>();
            report.bytes_sent = reader.pod<std::uint64_t>();
            report.messages_received = reader.pod<std::uint64_t>();
            report.vclock = reader.pod<double>();
            report.peak_rss_bytes = reader.pod<std::uint64_t>();
            std::lock_guard<std::mutex> lock(state.mutex);
            state.worker_reports[static_cast<std::size_t>(rank)] = report;
            state.worker_done[static_cast<std::size_t>(rank)] = true;
            ++state.done_workers;
            state.cv.notify_all();
            break;
          }
          case WireType::kError: {
            ByteReader reader(frame.payload);
            const std::string message = reader.string();
            std::lock_guard<std::mutex> lock(state.mutex);
            abort_master_locked(
                state, std::make_exception_ptr(CommError(
                           "rank " + std::to_string(rank) +
                           " worker failed: " + message)));
            return;
          }
          default: {
            std::lock_guard<std::mutex> lock(state.mutex);
            abort_master_locked(
                state, std::make_exception_ptr(CommError(
                           "unexpected frame from rank " +
                           std::to_string(rank) + " worker")));
            return;
          }
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.mutex);
        abort_master_locked(state, std::current_exception());
        return;
      }
    }
  }
}

// --------------------------------------------------------- worker side ----

class WorkerComm final : public Comm {
 public:
  WorkerComm(int fd, int rank, int ranks, std::uint64_t max_frame_bytes)
      : Comm(rank), fd_(fd), ranks_(ranks), max_frame_bytes_(max_frame_bytes),
        start_(std::chrono::steady_clock::now()) {}

  int size() const noexcept override { return ranks_; }

  bool probe(int src, int tag) override {
    if (scan_pending(src, tag) != pending_.size()) return true;
    // Drain whatever the master has already pushed, then re-check.
    while (socket_readable()) {
      buffer_one_frame();
      if (scan_pending(src, tag) != pending_.size()) return true;
    }
    return false;
  }

  void barrier() override {
    write_worker_frame(fd_, WireType::kBarrierEnter, {});
    // Deliveries racing the release are buffered, not dropped.
    while (true) {
      WireFrame frame = read_one_frame();
      if (frame.type == WireType::kBarrierRelease) return;
      buffer_deliver(std::move(frame));
    }
  }

  double vclock() override { return elapsed_seconds(start_) + charged_; }
  void charge(double seconds) override {
    if (seconds < 0.0) throw CommError("cannot charge negative time");
    charged_ += seconds;
  }

  RankReport report() {
    RankReport out;
    out.vclock = vclock();
    out.messages_sent = messages_sent_;
    out.bytes_sent = bytes_sent_;
    out.messages_received = messages_received_;
    out.peak_rss_bytes = self_peak_rss_bytes();
    return out;
  }

 protected:
  void send_any(int dest, int tag, Bytes payload) override {
    if (dest < 0 || dest >= ranks_) {
      throw CommError("send to invalid rank " + std::to_string(dest));
    }
    ++messages_sent_;
    bytes_sent_ += payload.size();
    if (dest == rank()) {
      // Self-sends never touch the wire (parity with the mailbox engines).
      pending_.push_back(Msg{rank(), tag, std::move(payload)});
      return;
    }
    Bytes frame;
    ByteWriter writer(frame);
    writer.pod(dest);
    writer.pod(tag);
    writer.vector(payload);
    write_worker_frame(fd_, WireType::kSend, frame);
  }

  Bytes recv_any(int src, int tag, RecvInfo* info) override {
    if (src != kAnySource && (src < 0 || src >= ranks_)) {
      throw CommError("recv from invalid rank " + std::to_string(src));
    }
    while (true) {
      const std::size_t idx = scan_pending(src, tag);
      if (idx != pending_.size()) {
        auto it = pending_.begin() + static_cast<std::ptrdiff_t>(idx);
        Msg msg = std::move(*it);
        pending_.erase(it);
        ++messages_received_;
        if (info) {
          info->src = msg.src;
          info->tag = msg.tag;
        }
        return std::move(msg.payload);
      }
      buffer_one_frame();
    }
  }

 private:
  std::size_t scan_pending(int src, int tag) const {
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (msg_matches(pending_[i], src, tag)) return i;
    }
    return pending_.size();
  }

  bool socket_readable() const {
    pollfd pfd{fd_, POLLIN, 0};
    int rc;
    do {
      rc = ::poll(&pfd, 1, 0);
    } while (rc < 0 && errno == EINTR);
    return rc > 0 && (pfd.revents & (POLLIN | POLLHUP)) != 0;
  }

  WireFrame read_one_frame() {
    WireFrame frame;
    if (!read_worker_frame(fd_, frame, max_frame_bytes_)) {
      throw CommError("master closed the rank-worker connection");
    }
    return frame;
  }

  void buffer_deliver(WireFrame frame) {
    if (frame.type != WireType::kDeliver) {
      throw CommError("unexpected frame type from master");
    }
    ByteReader reader(frame.payload);
    Msg msg;
    msg.src = reader.pod<int>();
    msg.tag = reader.pod<int>();
    msg.payload = reader.vector<std::uint8_t>();
    pending_.push_back(std::move(msg));
  }

  void buffer_one_frame() { buffer_deliver(read_one_frame()); }

  int fd_;
  int ranks_;
  std::uint64_t max_frame_bytes_;
  std::chrono::steady_clock::time_point start_;
  double charged_ = 0.0;
  std::deque<Msg> pending_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t messages_received_ = 0;
};

// ----------------------------------------------------- spawning helpers ----

void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

std::string make_socket_dir() {
  const char* tmp = std::getenv("TMPDIR");
  std::string pattern =
      std::string(tmp && *tmp ? tmp : "/tmp") + "/lbe-ranks-XXXXXX";
  std::vector<char> buffer(pattern.begin(), pattern.end());
  buffer.push_back('\0');
  if (::mkdtemp(buffer.data()) == nullptr) {
    throw IoError(std::string("mkdtemp: ") + std::strerror(errno));
  }
  return std::string(buffer.data());
}

pid_t spawn_worker(const std::string& socket_path, int rank, int ranks,
                   std::uint64_t max_frame_bytes) {
  const std::string rank_arg = std::to_string(rank);
  const std::string ranks_arg = std::to_string(ranks);
  const std::string frame_arg = std::to_string(max_frame_bytes);
  const pid_t pid = ::fork();
  if (pid < 0) throw IoError(std::string("fork: ") + std::strerror(errno));
  if (pid == 0) {
    // If the master dies (even SIGKILL), the kernel reaps us: no orphaned
    // workers grinding on in the background.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    const char* argv[] = {"lbe-rank-worker",
                          "--rank-worker",
                          "--worker-socket",
                          socket_path.c_str(),
                          "--worker-rank",
                          rank_arg.c_str(),
                          "--worker-ranks",
                          ranks_arg.c_str(),
                          "--worker-max-frame",
                          frame_arg.c_str(),
                          nullptr};
    ::execv("/proc/self/exe", const_cast<char* const*>(argv));
    // exec failed; nothing sensible to clean up in a forked child.
    ::_exit(127);
  }
  return pid;
}

void reap_children(std::vector<std::unique_ptr<WorkerConn>>& conns,
                   bool kill_first) {
  for (auto& conn : conns) {
    if (conn->pid <= 0) continue;
    if (kill_first) ::kill(conn->pid, SIGKILL);
    int status = 0;
    pid_t rc;
    do {
      rc = ::waitpid(conn->pid, &status, 0);
    } while (rc < 0 && errno == EINTR);
    conn->pid = -1;
  }
}

}  // namespace

// ----------------------------------------------------- ProcessTransport ----

ProcessTransport::ProcessTransport(ProcessTransportOptions options)
    : options_(std::move(options)) {
  if (options_.ranks < 1) {
    throw CommError("process transport needs at least one rank");
  }
  if (options_.ranks > 1 && options_.program.empty()) {
    throw CommError("process transport needs a rank program name");
  }
  reports_.resize(static_cast<std::size_t>(options_.ranks));
}

double ProcessTransport::makespan() const {
  double best = 0.0;
  for (const auto& report : reports_) best = std::max(best, report.vclock);
  return best;
}

void ProcessTransport::run(const std::function<void(Comm&)>& rank_main) {
  const int workers = options_.ranks - 1;

  std::string socket_dir = options_.socket_dir;
  bool own_dir = false;
  if (socket_dir.empty()) {
    socket_dir = make_socket_dir();
    own_dir = true;
  }
  const std::string socket_path = socket_dir + "/ranks.sock";

  MasterState state;
  state.worker_reports.resize(static_cast<std::size_t>(options_.ranks));
  state.worker_done.assign(static_cast<std::size_t>(options_.ranks), false);
  std::vector<std::unique_ptr<WorkerConn>> conns;
  conns.reserve(static_cast<std::size_t>(workers));
  std::thread router;
  std::exception_ptr failure;

  auto cleanup = [&](bool kill_workers) {
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      state.shutdown = true;
      state.cv.notify_all();
    }
    if (router.joinable()) router.join();
    reap_children(conns, kill_workers);
    conns.clear();
    ::unlink(socket_path.c_str());
    if (own_dir) ::rmdir(socket_dir.c_str());
  };

  try {
    net::Fd listener = net::listen_unix(socket_path);
    set_cloexec(listener.get());

    for (int rank = 1; rank <= workers; ++rank) {
      auto conn = std::make_unique<WorkerConn>();
      conn->pid = spawn_worker(socket_path, rank, options_.ranks,
                               options_.max_frame_bytes);
      conns.push_back(std::move(conn));
    }

    // Accept every worker; each introduces itself with Hello{rank}. A
    // worker that dies before connecting must fail the spawn, not hang it.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double>(options_.spawn_timeout_seconds);
    int connected = 0;
    while (connected < workers) {
      for (const auto& conn : conns) {
        if (conn->pid <= 0 || conn->fd.valid()) continue;
        int status = 0;
        if (::waitpid(conn->pid, &status, WNOHANG) == conn->pid) {
          conn->pid = -1;
          throw CommError("rank worker exited during startup");
        }
      }
      if (std::chrono::steady_clock::now() > deadline) {
        throw CommError("timed out waiting for rank workers to connect");
      }
      pollfd pfd{listener.get(), POLLIN, 0};
      const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
      if (ready < 0 && errno != EINTR) {
        throw IoError(std::string("poll: ") + std::strerror(errno));
      }
      if (ready <= 0) continue;
      net::Fd accepted = net::accept_connection(listener);
      if (!accepted.valid()) continue;
      set_cloexec(accepted.get());
      WireFrame hello;
      if (!read_worker_frame(accepted.get(), hello, options_.max_frame_bytes) ||
          hello.type != WireType::kHello) {
        throw CommError("rank worker handshake failed");
      }
      ByteReader reader(hello.payload);
      const int rank = reader.pod<int>();
      if (rank < 1 || rank > workers ||
          conns[static_cast<std::size_t>(rank - 1)]->fd.valid()) {
        throw CommError("rank worker announced an invalid rank");
      }
      conns[static_cast<std::size_t>(rank - 1)]->fd = std::move(accepted);
      ++connected;
    }

    // Ship the job description; only now do workers know what to run.
    Bytes setup_frame;
    ByteWriter writer(setup_frame);
    writer.string(options_.program);
    writer.vector(options_.setup);
    for (auto& conn : conns) {
      write_worker_frame(conn->fd.get(), WireType::kSetup, setup_frame);
    }

    if (workers > 0) {
      router = std::thread([&] {
        route_worker_traffic(state, conns, options_.max_frame_bytes);
      });
    }

    MasterComm comm(&state, &conns, options_.ranks);
    rank_main(comm);

    // The master is done; wait for every worker's Done report (or the
    // router's typed error if one died instead).
    {
      std::unique_lock<std::mutex> lock(state.mutex);
      state.cv.wait(lock, [&] {
        return state.error || state.done_workers == workers;
      });
      if (state.error) rethrow_master_error(state);
    }
    state.worker_reports[0] = comm.report();
  } catch (...) {
    failure = std::current_exception();
    // Prefer the router's diagnosis (e.g. "rank 2 worker exited") over the
    // secondary error the master thread hit because of it.
    std::lock_guard<std::mutex> lock(state.mutex);
    if (state.error) failure = state.error;
  }

  cleanup(/*kill_workers=*/failure != nullptr);
  if (failure) std::rethrow_exception(failure);
  reports_ = std::move(state.worker_reports);
}

// ------------------------------------------------------ worker process ----

void register_rank_program(const std::string& name, RankProgram program) {
  program_registry()[name] = std::move(program);
}

bool is_rank_worker(int argc, char** argv) {
  return argc >= 2 && std::strcmp(argv[1], "--rank-worker") == 0;
}

namespace {

struct WorkerArgs {
  std::string socket_path;
  int rank = -1;
  int ranks = -1;
  std::uint64_t max_frame_bytes = 256ull << 20;
};

WorkerArgs parse_worker_args(int argc, char** argv) {
  WorkerArgs args;
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    const std::string value = argv[i + 1];
    if (key == "--worker-socket") {
      args.socket_path = value;
    } else if (key == "--worker-rank") {
      args.rank = std::stoi(value);
    } else if (key == "--worker-ranks") {
      args.ranks = std::stoi(value);
    } else if (key == "--worker-max-frame") {
      args.max_frame_bytes = std::stoull(value);
    } else {
      throw ConfigError("unknown rank-worker flag: " + key);
    }
  }
  if (args.socket_path.empty() || args.rank < 1 || args.ranks <= args.rank) {
    throw ConfigError("incomplete rank-worker arguments");
  }
  return args;
}

/// Test hook: LBE_RANK_WORKER_FAULT="exit:<rank>" | "garbage:<rank>" |
/// "oversize:<rank>" makes that worker misbehave right after the handshake,
/// so fault-path tests can exercise the master's typed-error handling.
void maybe_inject_fault(int fd, int rank, std::uint64_t max_frame_bytes) {
  const char* spec = std::getenv("LBE_RANK_WORKER_FAULT");
  if (!spec || !*spec) return;
  const std::string text(spec);
  const auto colon = text.find(':');
  if (colon == std::string::npos) return;
  if (std::stoi(text.substr(colon + 1)) != rank) return;
  const std::string mode = text.substr(0, colon);
  if (mode == "exit") {
    ::_exit(3);  // vanish without a Done: the master must see EOF
  } else if (mode == "garbage") {
    const char junk[] = "this is not an LBEW frame at all, sorry";
    net::write_all(fd, junk, sizeof(junk));
    ::_exit(4);
  } else if (mode == "oversize") {
    const auto header = encode_worker_header(WireType::kSend,
                                             max_frame_bytes + 1);
    net::write_all(fd, header.data(), header.size());
    ::_exit(5);
  }
}

}  // namespace

int rank_worker_main(int argc, char** argv) {
  WorkerArgs args;
  net::Fd fd;
  try {
    args = parse_worker_args(argc, argv);
    fd = net::connect_unix(args.socket_path);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "lbe-rank-worker: %s\n", error.what());
    return 2;
  }
  try {
    Bytes hello;
    ByteWriter hello_writer(hello);
    hello_writer.pod(args.rank);
    write_worker_frame(fd.get(), WireType::kHello, hello);

    WireFrame setup;
    if (!read_worker_frame(fd.get(), setup, args.max_frame_bytes) ||
        setup.type != WireType::kSetup) {
      throw CommError("master handshake failed");
    }
    ByteReader reader(setup.payload);
    const std::string program_name = reader.string();
    const Bytes setup_payload = reader.vector<std::uint8_t>();

    maybe_inject_fault(fd.get(), args.rank, args.max_frame_bytes);

    const auto& registry = program_registry();
    const auto it = registry.find(program_name);
    if (it == registry.end()) {
      throw ConfigError("no rank program registered under '" + program_name +
                        "' in this binary");
    }

    WorkerComm comm(fd.get(), args.rank, args.ranks, args.max_frame_bytes);
    it->second(comm, setup_payload);

    const RankReport report = comm.report();
    Bytes done;
    ByteWriter writer(done);
    writer.pod(report.messages_sent);
    writer.pod(report.bytes_sent);
    writer.pod(report.messages_received);
    writer.pod(report.vclock);
    writer.pod(report.peak_rss_bytes);
    write_worker_frame(fd.get(), WireType::kDone, done);
    return 0;
  } catch (const std::exception& error) {
    // Best effort: tell the master why before dying, so the run fails with
    // this message instead of a bare "worker exited".
    try {
      Bytes message;
      ByteWriter writer(message);
      writer.string(error.what());
      write_worker_frame(fd.get(), WireType::kError, message);
    } catch (...) {
    }
    std::fprintf(stderr, "lbe-rank-worker: %s\n", error.what());
    return 1;
  }
}

}  // namespace lbe::mpi
