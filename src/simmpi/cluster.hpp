// Simulated distributed-memory cluster (the MPI substitution) — the two
// in-process implementations of the mpi::Transport abstraction.
//
// `Cluster::run(fn)` executes `fn(Comm&)` once per rank, SPMD style. Ranks
// have private address spaces by construction: the only way data crosses is
// `Bytes` payloads through Comm, exactly like MPI buffers.
//
// Two engines:
//
//  * kVirtual (default) — ranks execute one at a time (token-serialized),
//    each on its own OS thread. While a rank holds the token, wall time is
//    metered and charged to its *virtual clock* (scaled by a per-rank
//    slowdown factor for heterogeneous-cluster studies). Sends charge the
//    α–β cost model to the sender and stamp the message with its
//    availability time; receives advance the receiver clock to
//    max(own, available). A phase's simulated wall-clock is therefore
//    max over ranks of virtual time — the quantity the paper's Tavg/ΔTmax
//    metrics are built from — and it is independent of how many physical
//    cores the host has (this reproduction runs on one).
//
//  * kThreads — all ranks run concurrently on real threads with blocking
//    mailboxes; used by tests to validate the messaging semantics under
//    true concurrency. Virtual clocks advance only via explicit charge()
//    and the cost model.
//
// (The third Transport implementation — real OS processes over Unix-domain
// sockets — lives in simmpi/process.hpp.)
//
// With `measured_time = false`, metering is disabled and clocks move only
// through `Comm::charge`, making simulations bit-deterministic for tests.
//
// The scheduler always picks the ready rank with the smallest virtual
// clock (ties: lowest rank id). If every live rank is blocked, the cluster
// is deadlocked and every blocked call throws CommError — which is also
// how the message-drop fault injection used in tests manifests.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "simmpi/bytes.hpp"
#include "simmpi/cost_model.hpp"
#include "simmpi/transport.hpp"

namespace lbe::mpi {

enum class Engine { kVirtual, kThreads };

struct Envelope {
  int src = 0;
  int dest = 0;
  int tag = 0;
  Bytes payload;
  double available_at = 0.0;  ///< receiver may consume from this vtime
  std::uint64_t seq = 0;      ///< global send order (deterministic ties)
};

/// Test-only fault hooks; both may be empty.
struct FaultInjection {
  std::function<bool(const Envelope&)> drop;       ///< true => vanish
  std::function<double(const Envelope&)> delay;    ///< extra latency (s)
};

struct ClusterOptions {
  int ranks = 4;
  Engine engine = Engine::kVirtual;
  CostModel cost;
  /// Per-rank slowdown factors (virtual engine); empty = homogeneous 1.0.
  /// 2.0 means this rank's CPU work costs twice the virtual time.
  std::vector<double> slowdown;
  /// Meter real wall time of compute sections into virtual clocks.
  bool measured_time = true;
  FaultInjection faults;
};

class Cluster final : public Transport {
 public:
  explicit Cluster(ClusterOptions options);

  /// Runs one SPMD program; rethrows the first rank exception (other ranks
  /// are aborted). May be called repeatedly; clocks carry over between
  /// calls (use reset_clocks() in between if undesired).
  void run(const std::function<void(Comm&)>& rank_main) override;

  const ClusterOptions& options() const noexcept { return options_; }

  int ranks() const noexcept override { return options_.ranks; }
  const std::vector<RankReport>& reports() const noexcept override {
    return reports_;
  }

  /// Max final virtual clock over ranks — the simulated wall time.
  double makespan() const override;

  void reset_clocks();

 private:
  /// The per-rank Comm handed to rank_main: every operation delegates to
  /// the cluster's scheduler under its lock.
  class RankComm final : public Comm {
   public:
    RankComm(Cluster* cluster, int rank) : Comm(rank), cluster_(cluster) {}

    int size() const noexcept override { return cluster_->options_.ranks; }
    bool probe(int src, int tag) override {
      return cluster_->do_probe(rank(), src, tag);
    }
    void barrier() override { cluster_->do_barrier(rank()); }
    double vclock() override { return cluster_->do_vclock(rank()); }
    void charge(double seconds) override {
      cluster_->do_charge(rank(), seconds);
    }
    void yield() override { cluster_->do_yield(rank()); }

   protected:
    void send_any(int dest, int tag, Bytes payload) override {
      cluster_->do_send(rank(), dest, tag, std::move(payload));
    }
    Bytes recv_any(int src, int tag, RecvInfo* info) override {
      return cluster_->do_recv(rank(), src, tag, info);
    }

   private:
    Cluster* cluster_;
  };

  enum class State : std::uint8_t {
    kReady,    ///< runnable, waiting for the token (virtual engine)
    kRunning,  ///< executing user code
    kBlocked,  ///< inside recv() with no matching message
    kInBarrier,
    kDone,
  };

  struct Rank {
    State state = State::kReady;
    double vclock = 0.0;
    double slowdown = 1.0;
    std::deque<Envelope> mailbox;
    int want_src = kAnySource;  ///< valid while kBlocked
    int want_tag = kAnyTag;
    RankReport report;
    std::chrono::steady_clock::time_point slice_start;
  };

  // All private methods below require mutex_ held.
  void meter_locked(int rank);
  void resume_slice_locked(int rank);
  void schedule_next_locked();
  bool matches_locked(const Envelope& env, int src, int tag) const;
  std::size_t find_match_locked(int rank, int src, int tag) const;
  void check_deadlock_locked();
  void abort_locked(std::exception_ptr error);

  void rank_thread(int rank, const std::function<void(Comm&)>& rank_main);

  // RankComm backends. Tag validation happens in Comm::send, so `tag` may
  // legitimately be negative here (internal collective traffic).
  void do_send(int rank, int dest, int tag, Bytes payload);
  Bytes do_recv(int rank, int src, int tag, RecvInfo* info);
  bool do_probe(int rank, int src, int tag);
  void do_barrier(int rank);
  double do_vclock(int rank);
  void do_charge(int rank, double seconds);
  void do_yield(int rank);

  ClusterOptions options_;
  std::vector<RankReport> reports_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Rank> ranks_;
  bool serialize_ = true;  ///< virtual engine: one Running rank at a time
  std::uint64_t next_seq_ = 0;
  int barrier_count_ = 0;
  std::uint64_t barrier_generation_ = 0;
  double barrier_max_vclock_ = 0.0;
  std::exception_ptr first_error_;
  bool aborting_ = false;
};

}  // namespace lbe::mpi
