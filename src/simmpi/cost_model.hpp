// Communication cost model for the virtual-time engine.
//
// Classic α–β (latency–bandwidth) model: transferring n bytes costs
// α + n·β seconds of virtual time on both endpoints. Defaults approximate
// the gigabit-Ethernet cluster of the paper's §V-A testbed. Barriers cost
// α·ceil(log2 p), matching tree implementations in MPICH/OpenMPI.
#pragma once

#include <bit>
#include <cstdint>

namespace lbe::mpi {

struct CostModel {
  double latency = 50e-6;        ///< α: per-message latency (s)
  double seconds_per_byte = 1e-8;  ///< β: 1/bandwidth (s/B) ≈ 100 MB/s

  double transfer(std::size_t bytes) const {
    return latency + static_cast<double>(bytes) * seconds_per_byte;
  }

  double barrier(int ranks) const {
    if (ranks <= 1) return 0.0;
    const auto width = std::bit_width(static_cast<unsigned>(ranks - 1));
    return latency * static_cast<double>(width);
  }

  /// Free communication (ablation baseline).
  static CostModel zero() { return CostModel{0.0, 0.0}; }
};

}  // namespace lbe::mpi
