#include "simmpi/bytes.hpp"

// Serialization is header-only; this TU pins the library archive and hosts
// the one assumption the byte-level format relies on.
static_assert(sizeof(double) == 8, "wire format assumes 8-byte double");
static_assert(sizeof(float) == 4, "wire format assumes 4-byte float");
